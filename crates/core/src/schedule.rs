//! Source-grouped batch query schedules.
//!
//! A shuffled `estimate_many` batch thrashes per-row metadata: every
//! query re-resolves its source row's CSR offsets, bucket-index base and
//! shift, and the row's entries fall out of cache between visits. A
//! [`BatchSchedule`] fixes the *shape* of the batch without touching its
//! answers: it is an order-preserving permutation of the query indices,
//! sorted by `(source row, dest key)`, so a kernel can resolve row state
//! once per group of equal-source queries and walk each row's bucket
//! table monotonically — then scatter the answers back through the
//! permutation, leaving the output byte-identical to the unscheduled
//! batch for every batch order and thread count.
//!
//! The permutation is built with a two-pass stable counting sort (radix
//! by dest, then by source) when node ids are dense relative to the
//! batch — `O(q + n)`, no comparisons — and falls back to a stable
//! comparison sort on packed `(u, v)` keys otherwise. Ties (duplicate
//! pairs) keep their original submission order in both paths, so the
//! schedule itself is a pure, deterministic function of the pair list.
//!
//! [`BatchSchedule::shard_lens`] is the group-aware shard splitter for
//! the parallel path: contiguous shards over the permutation that only
//! cut at group boundaries, so no source row's group is split across
//! workers and each worker still writes one contiguous output region.

use congest::NodeId;

/// Counting sort is only worth its `O(n)` counter passes while the key
/// space is not much larger than the batch; beyond this ratio the
/// comparison sort wins.
const COUNTING_SORT_MAX_KEY_RATIO: usize = 8;

/// An order-preserving source-grouped execution order for one batch.
///
/// `order` is a permutation of `0..pairs.len()` such that
/// `pairs[order[i]]` is sorted by `(u, v)` (ties in original order);
/// `group_starts` marks the runs of equal `u` within it. Answers computed
/// in schedule order are scattered back via [`BatchSchedule::scatter`].
#[derive(Clone, Debug)]
pub struct BatchSchedule {
    order: Vec<u32>,
    /// Boundaries of equal-source runs in `order`: `group_starts[g]..
    /// group_starts[g + 1]` is one group; first 0, last `order.len()`.
    group_starts: Vec<u32>,
}

impl BatchSchedule {
    /// Builds the schedule for `pairs` on an `n`-node oracle.
    ///
    /// # Panics
    ///
    /// Panics when `pairs.len()` exceeds `u32::MAX` (batches are bounded
    /// far below that by every serving layer).
    pub fn build(pairs: &[(NodeId, NodeId)], n: usize) -> Self {
        let q = u32::try_from(pairs.len()).expect("batch fits u32 indices");
        let max_key = pairs
            .iter()
            .map(|&(u, v)| u.0.max(v.0))
            .max()
            .map_or(0, |m| m as usize);
        let keyspace = (max_key + 1).max(n);
        let order = if keyspace <= COUNTING_SORT_MAX_KEY_RATIO * pairs.len().max(1) {
            radix_order(pairs, keyspace, q)
        } else {
            let mut order: Vec<u32> = (0..q).collect();
            // Stable: duplicate (u, v) pairs keep submission order, same
            // as the radix path.
            order.sort_by_key(|&i| {
                let (u, v) = pairs[i as usize];
                (u64::from(u.0) << 32) | u64::from(v.0)
            });
            order
        };
        let mut group_starts = Vec::with_capacity(64);
        group_starts.push(0u32);
        for i in 1..order.len() {
            if pairs[order[i] as usize].0 != pairs[order[i - 1] as usize].0 {
                group_starts.push(i as u32);
            }
        }
        if *group_starts.last().expect("seeded with 0") != q {
            group_starts.push(q);
        }
        BatchSchedule {
            order,
            group_starts,
        }
    }

    /// The execution order: query indices sorted by `(source, dest)`.
    #[inline]
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// Number of equal-source groups.
    pub fn groups(&self) -> usize {
        self.group_starts.len().saturating_sub(1)
    }

    /// Splits the schedule into at most `workers` contiguous shard
    /// lengths, each covering whole groups (never cutting a source row's
    /// run) and each at least `min_len` queries long except possibly the
    /// last. The lengths sum to `order.len()`; a pure function of the
    /// schedule and the arguments, so sharding is deterministic.
    pub fn shard_lens(&self, workers: usize, min_len: usize) -> Vec<usize> {
        let q = self.order.len();
        let workers = workers.max(1);
        let target = q.div_ceil(workers).max(min_len.max(1));
        let mut lens = Vec::with_capacity(workers);
        let mut shard_start = 0usize;
        for w in self.group_starts.windows(2) {
            let end = w[1] as usize;
            if end - shard_start >= target && end < q {
                lens.push(end - shard_start);
                shard_start = end;
            }
        }
        if q > shard_start || lens.is_empty() {
            lens.push(q - shard_start);
        }
        lens
    }

    /// Scatters schedule-order answers back to submission order:
    /// `out[order[i]] = grouped[i]`.
    ///
    /// # Panics
    ///
    /// Panics when the slice lengths disagree with the schedule.
    pub fn scatter(&self, grouped: &[u64], out: &mut [u64]) {
        assert_eq!(grouped.len(), self.order.len(), "one answer per query");
        assert_eq!(out.len(), self.order.len(), "one slot per query");
        for (&slot, &ans) in self.order.iter().zip(grouped) {
            out[slot as usize] = ans;
        }
    }
}

/// Two-pass stable LSD radix sort of query indices by `(u, v)`.
fn radix_order(pairs: &[(NodeId, NodeId)], keyspace: usize, q: u32) -> Vec<u32> {
    let mut counts = vec![0u32; keyspace + 1];
    // Pass 1: stable counting sort by dest.
    for &(_, v) in pairs {
        counts[v.0 as usize + 1] += 1;
    }
    for i in 1..counts.len() {
        counts[i] += counts[i - 1];
    }
    let mut by_dest = vec![0u32; q as usize];
    for i in 0..q {
        let v = pairs[i as usize].1 .0 as usize;
        by_dest[counts[v] as usize] = i;
        counts[v] += 1;
    }
    // Pass 2: stable counting sort by source over the dest-sorted order.
    counts.clear();
    counts.resize(keyspace + 1, 0);
    for &(u, _) in pairs {
        counts[u.0 as usize + 1] += 1;
    }
    for i in 1..counts.len() {
        counts[i] += counts[i - 1];
    }
    let mut order = vec![0u32; q as usize];
    for &i in &by_dest {
        let u = pairs[i as usize].0 .0 as usize;
        order[counts[u] as usize] = i;
        counts[u] += 1;
    }
    order
}

/// The end of the equal-source group starting at `order[start]`: the
/// first position whose source differs (or `order.len()`). Grouped
/// kernels use this to walk a shard group by group without needing the
/// schedule's boundary table (shards are slices of the order).
#[inline]
pub fn group_end(pairs: &[(NodeId, NodeId)], order: &[u32], start: usize) -> usize {
    let u = pairs[order[start] as usize].0;
    let mut end = start + 1;
    while end < order.len() && pairs[order[end] as usize].0 == u {
        end += 1;
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs_of(raw: &[(u32, u32)]) -> Vec<(NodeId, NodeId)> {
        raw.iter().map(|&(u, v)| (NodeId(u), NodeId(v))).collect()
    }

    #[test]
    fn order_is_sorted_and_stable() {
        let pairs = pairs_of(&[(3, 1), (0, 2), (3, 1), (1, 9), (0, 0), (3, 0)]);
        let s = BatchSchedule::build(&pairs, 4);
        let keys: Vec<(u32, u32)> = s
            .order()
            .iter()
            .map(|&i| (pairs[i as usize].0 .0, pairs[i as usize].1 .0))
            .collect();
        assert_eq!(keys, vec![(0, 0), (0, 2), (1, 9), (3, 0), (3, 1), (3, 1)]);
        // Duplicate (3, 1) pairs keep submission order: index 0 before 2.
        assert_eq!(&s.order()[4..], &[0, 2]);
        assert_eq!(s.groups(), 3);
    }

    #[test]
    fn radix_and_comparison_paths_agree() {
        // Sparse ids force the comparison path; re-building with a huge
        // claimed n forces it too, and both must equal the radix result.
        let raw: Vec<(u32, u32)> = (0..200)
            .map(|i: u32| (i.wrapping_mul(37) % 50, i.wrapping_mul(91) % 50))
            .collect();
        let pairs = pairs_of(&raw);
        let dense = BatchSchedule::build(&pairs, 50);
        let sparse = BatchSchedule::build(&pairs, 50 * COUNTING_SORT_MAX_KEY_RATIO * 400);
        assert_eq!(dense.order(), sparse.order());
        assert_eq!(dense.group_starts, sparse.group_starts);
    }

    #[test]
    fn shards_align_with_groups_and_cover_everything() {
        let raw: Vec<(u32, u32)> = (0..1000).map(|i: u32| (i % 7, i % 13)).collect();
        let pairs = pairs_of(&raw);
        let s = BatchSchedule::build(&pairs, 16);
        for workers in [1usize, 2, 3, 5, 100] {
            let lens = s.shard_lens(workers, 1);
            assert!(lens.len() <= workers.max(1));
            assert_eq!(lens.iter().sum::<usize>(), pairs.len());
            // Every shard boundary is a group boundary.
            let mut pos = 0usize;
            for &len in &lens {
                pos += len;
                assert!(
                    s.group_starts.contains(&(pos as u32)),
                    "shard boundary {pos} splits a group (workers={workers})"
                );
            }
        }
    }

    #[test]
    fn scatter_inverts_the_permutation() {
        let pairs = pairs_of(&[(2, 1), (0, 3), (1, 1), (0, 1)]);
        let s = BatchSchedule::build(&pairs, 3);
        // Answer i in schedule order is the scheduled query's index × 10.
        let grouped: Vec<u64> = s.order().iter().map(|&i| u64::from(i) * 10).collect();
        let mut out = vec![0u64; pairs.len()];
        s.scatter(&grouped, &mut out);
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn group_end_walks_runs() {
        let pairs = pairs_of(&[(5, 1), (5, 2), (2, 0), (5, 3)]);
        let s = BatchSchedule::build(&pairs, 6);
        let order = s.order();
        assert_eq!(group_end(&pairs, order, 0), 1); // the (2, 0) group
        assert_eq!(group_end(&pairs, order, 1), 4); // the three (5, _) queries
    }

    #[test]
    fn empty_batch_is_fine() {
        let s = BatchSchedule::build(&[], 8);
        assert_eq!(s.order().len(), 0);
        assert_eq!(s.groups(), 0);
        assert_eq!(s.shard_lens(4, 1), vec![0]);
    }
}
