//! The shared staged **build pipeline**: everything the scheme builders
//! (`routing::build_rtc`, `compact::build_hierarchy`,
//! `compact::build_truncated`) have in common, in one place.
//!
//! Before this module each builder re-implemented the same skeleton:
//! sample a skeleton / level assignment, run PDE ladders, select pivots,
//! assemble a virtual skeleton graph from mutual estimates, trace
//! next-hop chains into detection trees, and label them. Those stages now
//! live here, so a builder is a *declarative list of stage calls* over
//! the ladder kernel (`crate::ladder`), recorded in a [`StageLog`] and
//! executable in either [`BuildMode`]:
//!
//! * `Simulated` — distributed phases run on `congest::Runtime` and the
//!   stage log carries their measured rounds (the paper-faithful path);
//! * `Native` — the same stages computed centrally (ladders via the
//!   native kernel, labeling via the already-central DFS of
//!   [`treeroute::TreeSet::build`], broadcasts skipped), charging zero
//!   rounds and producing **byte-identical scheme artifacts**.
//!
//! Failed w.h.p. events (a node that sees no skeleton node, a
//! disconnected skeleton graph, a missing pivot) are no longer panics:
//! stages report them as [`BuildError`]s, and [`with_resample`] retries a
//! build once on a [`Seed::derive`]d resample before giving up —
//! surfaced through `oracle::OracleBuilder::try_build`.
//!
//! Because every stage is a pure function of the canonical ladder
//! artifacts and the seed, the *entire build* — including retry behavior,
//! sampling attempts, and every tie-break — is identical across modes and
//! thread counts (pinned by `tests/build_parity.rs`).

use crate::ladder::BuildMode;
use crate::pde::RouteTable;
use congest::{NodeId, Topology};
use graphs::{DenseIndex, Seed, WGraph};
use rand::Rng;
use std::fmt;
use treeroute::{label_forest, TreeSet};

/// A recoverable build failure: a with-high-probability event that did
/// not hold for this sample at this scale. Retrying on a fresh sample
/// (see [`with_resample`]) usually succeeds; persistently failing builds
/// need a larger sampling constant `c`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// A node's routing archive contains no skeleton node (the RTC home
    /// selection of Theorem 4.5 needs one within the detection horizon).
    NoSkeletonSeen {
        /// The uncovered node.
        node: NodeId,
        /// The horizon/list size `h = σ` that was used.
        h: u64,
    },
    /// A node has no pivot at some hierarchy level (Lemma 4.7 / 4.10).
    NoPivot {
        /// The uncovered node.
        node: NodeId,
        /// The hierarchy level missing a pivot.
        level: u32,
    },
    /// The virtual skeleton graph built from mutual estimates is
    /// disconnected.
    SkeletonDisconnected {
        /// Which virtual graph (e.g. `"skeleton graph"`, `"G̃(l0)"`).
        what: &'static str,
        /// Its node count `|S|`.
        size: usize,
    },
    /// The **input** graph is not connected. Every scheme in this
    /// workspace builds on a connected graph, so builders reject the
    /// input up front instead of panicking mid-pipeline.
    Disconnected {
        /// Number of nodes in the rejected input.
        nodes: usize,
    },
    /// A build parameter is outside its valid range (e.g. ε ∉ (0, 8]).
    /// Unlike the sampling failures above, resampling cannot fix this.
    InvalidParam {
        /// What is wrong with the parameter.
        what: &'static str,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::NoSkeletonSeen { node, h } => {
                write!(f, "node {node} saw no skeleton node within h={h}; raise c")
            }
            BuildError::NoPivot { node, level } => {
                write!(f, "node {node} has no level-{level} pivot; raise c")
            }
            BuildError::SkeletonDisconnected { what, size } => {
                write!(f, "{what} disconnected (|S|={size}); raise c")
            }
            BuildError::Disconnected { nodes } => {
                write!(f, "input graph is not connected (n={nodes})")
            }
            BuildError::InvalidParam { what } => write!(f, "invalid build parameter: {what}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// One executed stage of a build pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageReport {
    /// Stage name (stable, lowercase, dash-separated).
    pub name: &'static str,
    /// CONGEST rounds charged by the stage (0 for node-local stages and
    /// for every stage of a [`BuildMode::Native`] build).
    pub rounds: u64,
}

/// The ordered list of stages a build executed — the declarative record
/// of the pipeline. Not serialized (it is measurement metadata, like
/// rounds); reloaded schemes carry an empty log.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StageLog {
    /// Stage reports in execution order.
    pub stages: Vec<StageReport>,
}

impl StageLog {
    /// Records a stage.
    pub fn push(&mut self, name: &'static str, rounds: u64) {
        self.stages.push(StageReport { name, rounds });
    }

    /// Sum of recorded per-stage rounds.
    pub fn total_rounds(&self) -> u64 {
        self.stages.iter().map(|s| s.rounds).sum()
    }
}

/// The derivation stream used for the one retry of [`with_resample`]
/// (an arbitrary fixed constant; see [`Seed::derive`]).
pub const RESAMPLE_STREAM: u64 = 0x7E5A_5EED;

/// Runs `build` with `seed`; on a sampling [`BuildError`], retries
/// **once** with the [`Seed::derive`]d resample stream before returning
/// the error. Input errors ([`BuildError::Disconnected`],
/// [`BuildError::InvalidParam`]) are returned immediately — a fresh
/// sample cannot connect a disconnected input or fix a knob.
///
/// The retry is part of the deterministic build contract: whether a
/// build retries depends only on the canonical artifacts of the first
/// attempt, so both build modes and all thread counts retry identically.
///
/// # Errors
///
/// Returns the second attempt's error when both attempts fail.
pub fn with_resample<T>(
    seed: Seed,
    mut build: impl FnMut(Seed, u32) -> Result<T, BuildError>,
) -> Result<T, BuildError> {
    match build(seed, 1) {
        Ok(t) => Ok(t),
        Err(e @ (BuildError::Disconnected { .. } | BuildError::InvalidParam { .. })) => Err(e),
        Err(_) => build(seed.derive(RESAMPLE_STREAM), 2),
    }
}

// ------------------------------------------------------------ sampling --

/// Samples each node into the skeleton independently with probability `p`,
/// retrying (fresh coins) until the skeleton is nonempty. The coins come
/// from `seed`'s own stream, so the sample is a pure function of
/// `(n, p, seed)`.
///
/// The paper conditions on `S ≠ ∅` ("for convenience, we assume that
/// always `S ≠ ∅`, which holds w.h.p."); at simulation scale an empty
/// sample can actually happen, so we retry and report the attempt count.
///
/// # Panics
///
/// Panics if `p` is not in `(0, 1]` or after 1000 failed attempts
/// (p astronomically small for the given n — a caller bug).
pub fn sample_skeleton(n: usize, p: f64, seed: Seed) -> (Vec<bool>, u32) {
    assert!(p > 0.0 && p <= 1.0, "sampling probability out of range");
    let mut rng = seed.rng();
    for attempt in 1..=1000 {
        let flags: Vec<bool> = (0..n).map(|_| rng.random_bool(p)).collect();
        if flags.iter().any(|&f| f) {
            return (flags, attempt);
        }
    }
    panic!("skeleton sampling failed 1000 times (n={n}, p={p})");
}

/// Samples a level for every node: `Pr[level(v) ≥ l] = n^{−l/k}` for
/// `l ∈ {0, …, k−1}` (Section 4.3, step 1), retrying with fresh coins
/// until the top set `S_{k−1}` is nonempty (the paper conditions on this
/// w.h.p. event). The coins come from `seed`'s own stream, so the levels
/// are a pure function of `(n, k, seed)`.
///
/// Returns `(levels, attempts)`.
///
/// # Panics
///
/// Panics if `k == 0` or after 1000 failed attempts.
pub fn sample_levels(n: usize, k: u32, seed: Seed) -> (Vec<u32>, u32) {
    assert!(k >= 1, "k must be ≥ 1");
    let mut rng = seed.rng();
    let p = (n as f64).powf(-1.0 / f64::from(k));
    for attempt in 1..=1000 {
        let levels: Vec<u32> = (0..n)
            .map(|_| {
                let mut l = 0;
                while l < k - 1 && rng.random_bool(p) {
                    l += 1;
                }
                l
            })
            .collect();
        if k == 1 || levels.iter().any(|&l| l == k - 1) {
            return (levels, attempt);
        }
    }
    panic!("level sampling failed 1000 times (n={n}, k={k})");
}

/// The member list of `S_l` given per-node levels.
pub fn level_set(levels: &[u32], l: u32) -> Vec<NodeId> {
    levels
        .iter()
        .enumerate()
        .filter(|&(_, &lv)| lv >= l)
        .map(|(i, _)| NodeId::from_index(i))
        .collect()
}

/// Membership flags for `S_l`.
pub fn level_flags(levels: &[u32], l: u32) -> Vec<bool> {
    levels.iter().map(|&lv| lv >= l).collect()
}

// ------------------------------------------------- virtual skeleton graph --

/// The virtual skeleton graph's edge list, in skeleton-index space:
/// `{i, j}` iff both endpoints hold an estimate of each other, with
/// weight `max` of the two (both are routable upper bounds). Returned
/// sorted, so the list — and everything serialized from the graph built
/// on it — is canonical regardless of route-table iteration order.
pub fn mutual_edges(
    routes: &[RouteTable],
    skel_ids: &[NodeId],
    index: &DenseIndex,
) -> Vec<(u32, u32, u64)> {
    let mut edges: Vec<(u32, u32, u64)> = Vec::new();
    for (i, &s) in skel_ids.iter().enumerate() {
        for (&t, r) in &routes[s.index()] {
            if let Some(j) = index.get(t) {
                if j > i {
                    if let Some(back) = routes[t.index()].get(&s) {
                        edges.push((i as u32, j as u32, r.est.max(back.est)));
                    }
                }
            }
        }
    }
    edges.sort_unstable();
    edges
}

/// Builds the virtual skeleton graph over `m` skeleton nodes and checks
/// connectivity (the w.h.p. event the constructions condition on).
///
/// # Errors
///
/// [`BuildError::SkeletonDisconnected`] when `m > 1` and the mutual
/// estimates do not connect the skeleton.
///
/// # Panics
///
/// Panics if the edge list is malformed (duplicate or out-of-range
/// entries) — that is a builder bug, not a sampling failure.
pub fn virtual_graph(
    m: usize,
    edges: &[(u32, u32, u64)],
    what: &'static str,
) -> Result<WGraph, BuildError> {
    let g = WGraph::from_edges(m.max(1), edges).expect("mutual-estimate edges are valid");
    if m > 1 && !g.is_connected() {
        return Err(BuildError::SkeletonDisconnected { what, size: m });
    }
    Ok(g)
}

// ------------------------------------------------------------- pivots --

/// The closest tagged source in a routing archive: `min (est, source)`
/// over entries whose source is flagged in `tagged` — the RTC home
/// (`s'_v`) selection. Order-independent (keyed min), so identical for
/// hash and flat table layouts.
pub fn closest_tagged(routes: &RouteTable, tagged: &[bool]) -> Option<(NodeId, u64)> {
    routes
        .iter()
        .filter(|(s, _)| tagged[s.index()])
        .map(|(&s, r)| (r.est, s))
        .min()
        .map(|(e, s)| (s, e))
}

// ----------------------------------------------------- chains and trees --

/// Traces the next-hop chain `from → … → to` through per-node route maps
/// (the Lemma 4.4-style greedy descent all schemes use to grow their
/// detection trees).
///
/// # Panics
///
/// Panics if the chain is broken or fails to make strict progress — that
/// would falsify the greedy-forwarding invariant of the canonical
/// archive, and tests treat it as a hard failure.
pub fn trace_chain(
    routes: &[RouteTable],
    topo: &Topology,
    from: NodeId,
    to: NodeId,
) -> Vec<NodeId> {
    let mut path = vec![from];
    let mut cur = from;
    let mut est = u64::MAX;
    while cur != to {
        let r = routes[cur.index()]
            .get(&to)
            .unwrap_or_else(|| panic!("broken chain: {cur} has no entry for {to}"));
        assert!(
            r.est < est,
            "chain stalled at {cur} (est {} -> {})",
            est,
            r.est
        );
        est = r.est;
        cur = topo.neighbor(cur, r.port);
        path.push(cur);
        assert!(path.len() <= topo.len() * 4, "chain exceeded hop cap");
    }
    path
}

/// Labels a built [`TreeSet`] in the given mode and returns the rounds
/// charged: `Simulated` runs the distributed forest-labeling protocol
/// (which asserts its result equals the centrally computed DFS labels the
/// schemes actually read from the `TreeSet`); `Native` charges nothing —
/// the labels are already the central DFS labels, so the artifacts are
/// identical by construction.
pub fn label_trees(topo: &Topology, set: &TreeSet, mode: BuildMode) -> congest::Metrics {
    match mode {
        BuildMode::Simulated => label_forest(topo, set).metrics,
        BuildMode::Native => congest::Metrics::new(topo.len()),
    }
}

// --------------------------------------------------------- parallelism --

/// Resolves a `threads` knob (`0` = [`std::thread::available_parallelism`],
/// else the given count), capped by the number of work items.
pub fn resolve_threads(threads: usize, items: usize) -> usize {
    let t = match threads {
        0 => std::thread::available_parallelism().map_or(1, |p| p.get()),
        t => t,
    };
    t.min(items.max(1)).max(1)
}

/// Computes `f(0), …, f(count − 1)` on `threads` workers over contiguous
/// index shards and returns the results **in index order** — scheduling
/// is unobservable, so outputs are byte-identical for every thread count
/// (the same contract as `run_pde`'s rung parallelism). Used by the
/// native engine for embarrassingly parallel stages (e.g. per-skeleton
/// Dijkstra rows).
pub fn parallel_map<T: Send>(
    threads: usize,
    count: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    let workers = resolve_threads(threads, count);
    if workers <= 1 || count <= 1 {
        return (0..count).map(f).collect();
    }
    let chunk = count.div_ceil(workers);
    let mut shards: Vec<Vec<T>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..count)
            .step_by(chunk)
            .map(|lo| {
                let hi = (lo + chunk).min(count);
                let f = &f;
                scope.spawn(move || (lo..hi).map(f).collect::<Vec<T>>())
            })
            .collect();
        for h in handles {
            shards.push(h.join().expect("pipeline worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(count);
    for shard in shards {
        out.extend(shard);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skeleton_sample_is_nonempty_and_deterministic() {
        for s in 0..50u64 {
            let (flags, _) = sample_skeleton(30, 0.05, Seed(s));
            assert!(flags.iter().any(|&f| f));
            assert_eq!(flags.len(), 30);
            assert_eq!(flags, sample_skeleton(30, 0.05, Seed(s)).0);
        }
    }

    #[test]
    fn skeleton_sample_rate_tracks_p() {
        let (flags, _) = sample_skeleton(20_000, 0.1, Seed(2));
        let count = flags.iter().filter(|&&f| f).count();
        assert!(
            (1600..=2400).contains(&count),
            "count {count} far from 2000"
        );
    }

    #[test]
    fn level_sampling_is_nested_and_deterministic() {
        let (levels, _) = sample_levels(200, 4, Seed(3));
        for l in 1..4 {
            let upper = level_set(&levels, l);
            let lower = level_set(&levels, l - 1);
            assert!(upper.iter().all(|v| lower.contains(v)));
        }
        assert_eq!(level_set(&levels, 0).len(), 200);
        assert_eq!(levels, sample_levels(200, 4, Seed(3)).0);
    }

    #[test]
    fn resample_retries_exactly_once() {
        let mut seeds = Vec::new();
        let err = BuildError::NoPivot {
            node: NodeId(0),
            level: 1,
        };
        let out: Result<(), _> = with_resample(Seed(7), |seed, attempt| {
            seeds.push((seed, attempt));
            Err(err.clone())
        });
        assert_eq!(out, Err(err));
        assert_eq!(seeds.len(), 2);
        assert_eq!(seeds[0], (Seed(7), 1));
        assert_eq!(seeds[1], (Seed(7).derive(RESAMPLE_STREAM), 2));
        let ok: Result<u32, _> = with_resample(Seed(7), |_, attempt| {
            if attempt == 1 {
                Err(BuildError::NoSkeletonSeen {
                    node: NodeId(1),
                    h: 3,
                })
            } else {
                Ok(42)
            }
        });
        assert_eq!(ok, Ok(42));
    }

    #[test]
    fn parallel_map_is_order_preserving_for_every_thread_count() {
        let f = |i: usize| i * i + 1;
        let want: Vec<usize> = (0..37).map(f).collect();
        for threads in [0usize, 1, 2, 4, 9, 64] {
            assert_eq!(parallel_map(threads, 37, f), want, "threads={threads}");
        }
        assert!(parallel_map::<usize>(4, 0, |_| unreachable!()).is_empty());
    }

    #[test]
    fn mutual_edges_are_sorted_and_symmetric() {
        use crate::pde::RouteInfo;
        let mk = |pairs: &[(u32, u64)]| {
            let mut t = RouteTable::default();
            for &(s, est) in pairs {
                t.insert(
                    NodeId(s),
                    RouteInfo {
                        est,
                        port: 0,
                        level: 0,
                    },
                );
            }
            t
        };
        // Skeleton {0, 2, 3}; 0↔2 mutual (weight max(4,6)=6), 0→3 one-way.
        let routes = vec![mk(&[(2, 4), (3, 9)]), mk(&[]), mk(&[(0, 6)]), mk(&[])];
        let skel_ids = vec![NodeId(0), NodeId(2), NodeId(3)];
        let index = DenseIndex::new(4, &skel_ids);
        let edges = mutual_edges(&routes, &skel_ids, &index);
        assert_eq!(edges, vec![(0, 1, 6)]);
        let g = virtual_graph(3, &edges, "test skeleton");
        assert_eq!(
            g.unwrap_err(),
            BuildError::SkeletonDisconnected {
                what: "test skeleton",
                size: 3
            }
        );
    }

    #[test]
    fn stage_log_totals() {
        let mut log = StageLog::default();
        log.push("sample", 0);
        log.push("pde-short", 12);
        log.push("trees", 5);
        assert_eq!(log.total_rounds(), 17);
        assert_eq!(log.stages.len(), 3);
        assert_eq!(log.stages[1].name, "pde-short");
    }
}
