//! Overlapping rooted trees with DFS-interval labels.

use congest::NodeId;
use std::collections::{BTreeMap, HashMap};

/// One rooted tree (e.g. the detection tree `T_s` of a skeleton node `s`),
/// possibly spanning only a subset of the graph's nodes.
#[derive(Clone, Debug, Default)]
pub struct TreeData {
    /// Parent of each member (the root has no entry).
    pub parent: HashMap<NodeId, NodeId>,
    /// Children of each member, sorted by id (deterministic DFS order).
    pub children: HashMap<NodeId, Vec<NodeId>>,
    /// DFS interval `[in, out)` of each member; `in` is the member's label.
    pub interval: HashMap<NodeId, (u64, u64)>,
    /// Depth of each member (root = 0).
    pub depth: HashMap<NodeId, u32>,
}

impl TreeData {
    /// The DFS label of `v`, if `v` is a member.
    pub fn label(&self, v: NodeId) -> Option<u64> {
        self.interval.get(&v).map(|&(i, _)| i)
    }

    /// `true` if the DFS index `dfs` lies in `x`'s subtree.
    pub fn in_subtree(&self, x: NodeId, dfs: u64) -> bool {
        self.interval
            .get(&x)
            .is_some_and(|&(lo, hi)| (lo..hi).contains(&dfs))
    }

    /// The child of `x` whose subtree contains `dfs`, for descending
    /// towards the labeled node. `None` if `dfs` is `x` itself or outside
    /// `x`'s subtree.
    pub fn next_hop_down(&self, x: NodeId, dfs: u64) -> Option<NodeId> {
        if !self.in_subtree(x, dfs) || self.label(x) == Some(dfs) {
            return None;
        }
        self.children
            .get(&x)
            .and_then(|ch| ch.iter().find(|&&c| self.in_subtree(c, dfs)))
            .copied()
    }

    /// Number of members (0 before [`TreeSet::build`] populated intervals).
    pub fn len(&self) -> usize {
        self.interval.len()
    }

    /// `true` if the tree has no labeled members.
    pub fn is_empty(&self) -> bool {
        self.interval.is_empty()
    }

    /// Height (max member depth).
    pub fn height(&self) -> u32 {
        self.depth.values().copied().max().unwrap_or(0)
    }
}

/// A collection of possibly-overlapping rooted trees, keyed by root.
///
/// Built by adding next-hop *chains* (the paths PDE routing induces from
/// each node to its pivot); [`TreeSet::build`] then computes children
/// lists, depths and DFS intervals for every tree.
#[derive(Clone, Debug, Default)]
pub struct TreeSet {
    /// The trees, keyed by root id.
    pub trees: BTreeMap<NodeId, TreeData>,
}

impl TreeSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a chain `path[0] → path[1] → … → root` to the tree rooted at
    /// `path.last()`. Consistency is required: a node already present in
    /// that tree must have the same parent.
    ///
    /// # Panics
    ///
    /// Panics if the chain disagrees with an existing parent pointer
    /// (chains come from per-node next-hop tables, which are functions of
    /// the node, so disagreement indicates a bug).
    pub fn add_chain(&mut self, path: &[NodeId]) {
        if path.len() < 2 {
            if let Some(&root) = path.last() {
                self.trees.entry(root).or_default();
            }
            return;
        }
        let root = *path.last().expect("nonempty path");
        let tree = self.trees.entry(root).or_default();
        for w in path.windows(2) {
            let (child, parent) = (w[0], w[1]);
            if let Some(&p) = tree.parent.get(&child) {
                assert_eq!(
                    p, parent,
                    "inconsistent parent for {child} in tree {root}: {p} vs {parent}"
                );
                break; // the rest of the chain is already present
            }
            tree.parent.insert(child, parent);
        }
    }

    /// Computes children, depths and DFS intervals for every tree.
    ///
    /// # Panics
    ///
    /// Panics if some tree contains a cycle or is disconnected from its
    /// root (again: indicates broken next-hop chains; loud failure
    /// wanted). Parent maps decoded from *untrusted* bytes must go
    /// through [`TreeSet::try_build`] instead.
    pub fn build(&mut self) {
        if let Err(e) = self.try_build() {
            panic!("{e}");
        }
    }

    /// Fallible variant of [`TreeSet::build`] for parent maps decoded
    /// from untrusted bytes: a cycle or a tree disconnected from its
    /// root is reported as an error instead of a panic.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed tree.
    pub fn try_build(&mut self) -> Result<(), String> {
        for (&root, tree) in &mut self.trees {
            tree.children.clear();
            for (&c, &p) in &tree.parent {
                tree.children.entry(p).or_default().push(c);
                tree.children.entry(c).or_default();
            }
            tree.children.entry(root).or_default();
            for ch in tree.children.values_mut() {
                ch.sort_unstable();
            }
            // Iterative DFS assigning intervals.
            tree.interval.clear();
            tree.depth.clear();
            let mut counter = 0u64;
            // Stack entries: (node, child_index, depth).
            let mut stack = vec![(root, 0usize, 0u32)];
            let mut in_time: HashMap<NodeId, u64> = HashMap::new();
            let member_count = tree.children.len();
            while let Some(top) = stack.last_mut() {
                let (v, ci, d) = (top.0, top.1, top.2);
                if ci == 0 {
                    in_time.insert(v, counter);
                    tree.depth.insert(v, d);
                    counter += 1;
                }
                let ch = &tree.children[&v];
                if ci < ch.len() {
                    let c = ch[ci];
                    top.1 += 1;
                    stack.push((c, 0, d + 1));
                    if stack.len() > member_count + 1 {
                        return Err(format!("cycle detected in tree {root}"));
                    }
                } else {
                    stack.pop();
                    tree.interval.insert(v, (in_time[&v], counter));
                }
            }
            if tree.interval.len() != tree.children.len() {
                return Err(format!("tree {root} is disconnected from its root"));
            }
        }
        Ok(())
    }

    /// Serializes the set (snapshot wire format): per tree, the root and
    /// its parent pointers sorted by child id. Children lists, depths and
    /// DFS intervals are *not* written — [`TreeSet::read_from`] recomputes
    /// them with [`TreeSet::build`], which is a deterministic function of
    /// the parent structure, so reloaded labels are identical.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn write_into(&self, sink: &mut dyn std::io::Write) -> std::io::Result<()> {
        let mut w = congest::wire::WireWriter::new(sink);
        w.len(self.trees.len())?;
        for (&root, tree) in &self.trees {
            w.u32(root.0)?;
            let mut parents: Vec<(NodeId, NodeId)> =
                tree.parent.iter().map(|(&c, &p)| (c, p)).collect();
            parents.sort_unstable();
            w.len(parents.len())?;
            for (c, p) in parents {
                w.u32(c.0)?;
                w.u32(p.0)?;
            }
        }
        Ok(())
    }

    /// Deserializes a set written by [`TreeSet::write_into`] and rebuilds
    /// children/depth/interval tables.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed bytes, including decoded
    /// parent pointers that form a cycle or disconnect a tree from its
    /// root — corrupted snapshots must error, never panic.
    pub fn read_from(source: &mut dyn std::io::Read) -> std::io::Result<Self> {
        let mut r = congest::wire::WireReader::new(source);
        let num_trees = r.len64(congest::wire::MAX_SEQ_LEN)?;
        let mut set = TreeSet::new();
        for _ in 0..num_trees {
            let root = NodeId(r.u32()?);
            let tree = set.trees.entry(root).or_default();
            let edges = r.len64(congest::wire::MAX_SEQ_LEN)?;
            for _ in 0..edges {
                let c = NodeId(r.u32()?);
                let p = NodeId(r.u32()?);
                tree.parent.insert(c, p);
            }
        }
        set.try_build().map_err(congest::wire::invalid_data)?;
        Ok(set)
    }

    /// Trees containing `v`, as `(root, depth_of_v)` pairs.
    pub fn memberships(&self, v: NodeId) -> Vec<(NodeId, u32)> {
        self.trees
            .iter()
            .filter_map(|(&r, t)| t.depth.get(&v).map(|&d| (r, d)))
            .collect()
    }

    /// The maximum number of trees any single node belongs to (the
    /// quantity Lemma 4.4 bounds by `O(log n)`).
    pub fn max_membership(&self, n: usize) -> usize {
        let mut count = vec![0usize; n];
        for t in self.trees.values() {
            for v in t.interval.keys() {
                count[v.index()] += 1;
            }
        }
        count.into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn single_chain_tree() {
        let mut ts = TreeSet::new();
        ts.add_chain(&[v(3), v(2), v(1), v(0)]);
        ts.build();
        let t = &ts.trees[&v(0)];
        assert_eq!(t.len(), 4);
        assert_eq!(t.label(v(0)), Some(0));
        assert_eq!(t.depth[&v(3)], 3);
        assert_eq!(t.height(), 3);
        // Descend from the root towards node 3.
        let l3 = t.label(v(3)).unwrap();
        assert_eq!(t.next_hop_down(v(0), l3), Some(v(1)));
        assert_eq!(t.next_hop_down(v(1), l3), Some(v(2)));
        assert_eq!(t.next_hop_down(v(2), l3), Some(v(3)));
        assert_eq!(t.next_hop_down(v(3), l3), None);
    }

    #[test]
    fn merged_chains_share_prefix() {
        let mut ts = TreeSet::new();
        ts.add_chain(&[v(3), v(1), v(0)]);
        ts.add_chain(&[v(4), v(1), v(0)]);
        ts.add_chain(&[v(2), v(0)]);
        ts.build();
        let t = &ts.trees[&v(0)];
        assert_eq!(t.len(), 5);
        assert_eq!(t.children[&v(1)], vec![v(3), v(4)]);
        // Intervals nest properly.
        let (lo1, hi1) = t.interval[&v(1)];
        let (lo3, hi3) = t.interval[&v(3)];
        assert!(lo1 <= lo3 && hi3 <= hi1);
        // Root's interval covers everything.
        assert_eq!(t.interval[&v(0)], (0, 5));
    }

    #[test]
    fn overlapping_trees_are_independent() {
        let mut ts = TreeSet::new();
        ts.add_chain(&[v(2), v(1), v(0)]);
        ts.add_chain(&[v(2), v(3)]); // node 2 also in tree rooted at 3
        ts.build();
        assert_eq!(ts.trees.len(), 2);
        assert_eq!(ts.memberships(v(2)).len(), 2);
        assert_eq!(ts.max_membership(5), 2);
    }

    #[test]
    #[should_panic(expected = "inconsistent parent")]
    fn conflicting_chains_panic() {
        let mut ts = TreeSet::new();
        ts.add_chain(&[v(2), v(1), v(0)]);
        ts.add_chain(&[v(2), v(3), v(0)]);
    }

    #[test]
    fn snapshot_round_trip_preserves_labels() {
        let mut ts = TreeSet::new();
        ts.add_chain(&[v(3), v(1), v(0)]);
        ts.add_chain(&[v(4), v(1), v(0)]);
        ts.add_chain(&[v(2), v(0)]);
        ts.add_chain(&[v(2), v(5)]); // second tree
        ts.add_chain(&[v(6)]); // singleton tree
        ts.build();
        let mut buf = Vec::new();
        ts.write_into(&mut buf).unwrap();
        let back = TreeSet::read_from(&mut &buf[..]).unwrap();
        assert_eq!(back.trees.len(), ts.trees.len());
        for (root, tree) in &ts.trees {
            let other = &back.trees[root];
            assert_eq!(tree.parent, other.parent, "tree {root}");
            assert_eq!(tree.interval, other.interval, "tree {root}");
            assert_eq!(tree.depth, other.depth, "tree {root}");
            assert_eq!(tree.children, other.children, "tree {root}");
        }
        // Re-serializing the reloaded set gives identical bytes.
        let mut buf2 = Vec::new();
        back.write_into(&mut buf2).unwrap();
        assert_eq!(buf, buf2);
    }

    #[test]
    fn corrupt_parent_maps_error_instead_of_panicking() {
        // A cycle (1 → 2 → 1 in the tree rooted at 0) and a component
        // disconnected from its root are both representable on the wire;
        // decoding must reject them as InvalidData.
        let mut cyclic = TreeSet::new();
        cyclic
            .trees
            .entry(v(0))
            .or_default()
            .parent
            .extend([(v(1), v(2)), (v(2), v(1))]);
        let mut buf = Vec::new();
        cyclic.write_into(&mut buf).unwrap();
        let err = TreeSet::read_from(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

        let mut floating = TreeSet::new();
        floating
            .trees
            .entry(v(0))
            .or_default()
            .parent
            .insert(v(5), v(6)); // 5 → 6, neither reaches root 0
        let mut buf = Vec::new();
        floating.write_into(&mut buf).unwrap();
        let err = TreeSet::read_from(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn next_hop_down_rejects_foreign_labels() {
        let mut ts = TreeSet::new();
        ts.add_chain(&[v(2), v(1), v(0)]);
        ts.add_chain(&[v(4), v(3), v(0)]);
        ts.build();
        let t = &ts.trees[&v(0)];
        let l2 = t.label(v(2)).unwrap();
        // From node 3 (sibling branch), label of 2 is not in the subtree.
        assert_eq!(t.next_hop_down(v(3), l2), None);
        assert!(!t.in_subtree(v(3), l2));
    }
}
