//! Tree-routing labels in the style of Thorup & Zwick (SPAA 2001).
//!
//! The PODC 2015 paper routes the "last mile" of both its schemes — from a
//! skeleton/pivot node `s` down to the destination `w` — along the
//! detection tree `T_s` formed by the PDE next-hop chains, using tree
//! labels of `(1+o(1)) log n` bits computed distributedly in `Õ(depth)`
//! rounds ("it is known how to construct labels for tree routing of size
//! `(1+o(1)) log n` in time `Õ(h)` in trees of depth `h`", Section 4.2).
//!
//! This crate provides:
//!
//! * [`TreeSet`] / [`TreeData`] — overlapping rooted trees built from
//!   next-hop chains, with DFS-interval labels: the label of `w` in `T_s`
//!   is its DFS index (`⌈log₂ n⌉` bits); each member stores, per tree, its
//!   own interval and its children's intervals, so descending towards a
//!   label is a local interval lookup.
//! * [`forest::label_forest`] — a *distributed* labeling program
//!   (convergecast of subtree sizes, then a downcast of DFS offsets) that
//!   runs on the CONGEST simulator, multiplexing all trees over shared
//!   edges with per-port FIFO queues; its measured round count is charged
//!   to the schemes (Lemma 4.7 argues each node is in `O(log n)` trees, so
//!   this costs `Õ(depth)` rounds — Experiment E7 validates it).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod forest;
mod trees;

pub use forest::{label_forest, LabelingOutcome};
pub use trees::{TreeData, TreeSet};
