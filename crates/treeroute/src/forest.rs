//! Distributed DFS-interval labeling of overlapping trees.
//!
//! Implements the `Õ(depth)`-round tree-labeling step the paper imports
//! from Thorup–Zwick: every tree performs a convergecast of subtree sizes
//! followed by a downcast of DFS offsets. All trees run concurrently; each
//! edge carries one message per round (per-port FIFO queues), so edges
//! shared by many trees serialize naturally — exactly the congestion
//! behaviour Lemma 4.4/4.7 bound via the `O(log n)` tree-membership count.

use crate::trees::TreeSet;
use congest::{bits_for, Config, Ctx, Message, Metrics, NodeId, Port, Program, Runtime, Topology};
use std::collections::{BTreeMap, VecDeque};

/// Message of the labeling protocol, tagged with the tree it belongs to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeMsg {
    /// Root id of the tree this message belongs to.
    pub root: NodeId,
    /// Payload.
    pub kind: TreeMsgKind,
}

/// Payload of a [`TreeMsg`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TreeMsgKind {
    /// Subtree size, travelling upward.
    Size(u64),
    /// DFS offset, travelling downward.
    Offset(u64),
}

impl Message for TreeMsg {
    fn bit_size(&self) -> usize {
        let payload = match self.kind {
            TreeMsgKind::Size(s) => bits_for(s + 1),
            TreeMsgKind::Offset(o) => bits_for(o + 1),
        };
        bits_for(u64::from(self.root.0) + 1) + 1 + payload
    }
}

#[derive(Debug)]
struct NodeTreeState {
    parent_port: Option<Port>,
    /// Child ports, sorted (port order == neighbor-id order, matching the
    /// deterministic DFS order of [`TreeSet::build`]).
    children: Vec<Port>,
    child_sizes: Vec<Option<u64>>,
    my_size: Option<u64>,
    interval: Option<(u64, u64)>,
}

#[derive(Debug)]
struct LabelProgram {
    trees: BTreeMap<NodeId, NodeTreeState>,
    outq: Vec<VecDeque<TreeMsg>>,
    initialized: bool,
}

impl LabelProgram {
    fn try_complete_up(&mut self, root: NodeId) {
        let st = self.trees.get_mut(&root).expect("tree state exists");
        if st.my_size.is_some() || st.child_sizes.iter().any(Option::is_none) {
            return;
        }
        let size = 1 + st
            .child_sizes
            .iter()
            .map(|s| s.expect("all child sizes present"))
            .sum::<u64>();
        st.my_size = Some(size);
        match st.parent_port {
            Some(p) => self.outq[p as usize].push_back(TreeMsg {
                root,
                kind: TreeMsgKind::Size(size),
            }),
            None => {
                // This node is the root: its interval starts at 0.
                st.interval = Some((0, size));
                self.push_child_offsets(root, 0);
            }
        }
    }

    fn push_child_offsets(&mut self, root: NodeId, my_in: u64) {
        let st = self.trees.get_mut(&root).expect("tree state exists");
        let mut offset = my_in + 1;
        let sends: Vec<(Port, u64)> = st
            .children
            .iter()
            .zip(&st.child_sizes)
            .map(|(&p, s)| {
                let o = offset;
                offset += s.expect("sizes known before offsets");
                (p, o)
            })
            .collect();
        for (p, o) in sends {
            self.outq[p as usize].push_back(TreeMsg {
                root,
                kind: TreeMsgKind::Offset(o),
            });
        }
    }
}

impl Program for LabelProgram {
    type Msg = TreeMsg;

    fn round(&mut self, ctx: &mut Ctx<'_, TreeMsg>) {
        if !self.initialized {
            self.initialized = true;
            let roots: Vec<NodeId> = self.trees.keys().copied().collect();
            for root in roots {
                self.try_complete_up(root);
            }
        }
        let arrivals: Vec<(Port, TreeMsg)> = ctx
            .inbox()
            .iter()
            .map(|a| (a.port, a.msg.clone()))
            .collect();
        for (port, msg) in arrivals {
            let root = msg.root;
            match msg.kind {
                TreeMsgKind::Size(s) => {
                    let st = self.trees.get_mut(&root).expect("size for unknown tree");
                    let idx = st
                        .children
                        .iter()
                        .position(|&c| c == port)
                        .expect("size from non-child");
                    st.child_sizes[idx] = Some(s);
                    self.try_complete_up(root);
                }
                TreeMsgKind::Offset(o) => {
                    let st = self.trees.get_mut(&root).expect("offset for unknown tree");
                    let size = st.my_size.expect("offset before size");
                    st.interval = Some((o, o + size));
                    self.push_child_offsets(root, o);
                }
            }
        }
        for port in 0..ctx.degree() as Port {
            if let Some(msg) = self.outq[port as usize].pop_front() {
                ctx.send(port, msg);
            }
        }
    }

    fn is_idle(&self) -> bool {
        self.outq.iter().all(VecDeque::is_empty)
    }
}

/// Result of the distributed labeling run.
#[derive(Debug)]
pub struct LabelingOutcome {
    /// Per node: tree root → DFS interval, as computed *distributedly*.
    pub intervals: Vec<BTreeMap<NodeId, (u64, u64)>>,
    /// Simulator metrics (`rounds` is the `Õ(depth)` cost charged to the
    /// schemes).
    pub metrics: Metrics,
}

/// Runs the distributed labeling protocol for every tree in `set` over
/// `topo`, and checks the result against the centrally computed intervals
/// (they must agree exactly — both use neighbor-id DFS order).
///
/// `set` must have been [`TreeSet::build`]-finalized, and every tree edge
/// must be an edge of `topo` (chains are next-hop chains, so they are).
///
/// # Panics
///
/// Panics if a tree edge is missing from the topology, or if the
/// distributed result disagrees with the central one (a protocol bug).
pub fn label_forest(topo: &Topology, set: &TreeSet) -> LabelingOutcome {
    let n = topo.len();
    let mut programs: Vec<LabelProgram> = topo
        .nodes()
        .map(|v| LabelProgram {
            trees: BTreeMap::new(),
            outq: vec![VecDeque::new(); topo.degree(v)],
            initialized: false,
        })
        .collect();
    for (&root, tree) in &set.trees {
        for &v in tree.interval.keys() {
            let parent_port = tree.parent.get(&v).map(|&p| {
                topo.port_to(v, p)
                    .unwrap_or_else(|| panic!("tree edge {v}-{p} missing from topology"))
            });
            let mut children: Vec<Port> = tree.children[&v]
                .iter()
                .map(|&c| {
                    topo.port_to(v, c)
                        .unwrap_or_else(|| panic!("tree edge {v}-{c} missing from topology"))
                })
                .collect();
            children.sort_unstable();
            let child_sizes = vec![None; children.len()];
            programs[v.index()].trees.insert(
                root,
                NodeTreeState {
                    parent_port,
                    children,
                    child_sizes,
                    my_size: None,
                    interval: None,
                },
            );
        }
    }

    let mut rt = Runtime::new(topo, programs, Config::default());
    let report = rt.run();
    assert!(report.quiescent, "forest labeling did not quiesce");
    let (programs, metrics) = rt.into_parts();

    let mut intervals: Vec<BTreeMap<NodeId, (u64, u64)>> = Vec::with_capacity(n);
    for (i, p) in programs.into_iter().enumerate() {
        let v = NodeId::from_index(i);
        let mut m = BTreeMap::new();
        for (root, st) in p.trees {
            let got = st
                .interval
                .unwrap_or_else(|| panic!("node {v} unlabeled in tree {root}"));
            let want = set.trees[&root].interval[&v];
            assert_eq!(
                got, want,
                "distributed label of {v} in tree {root} disagrees with central DFS"
            );
            m.insert(root, got);
        }
        intervals.push(m);
    }
    LabelingOutcome { intervals, metrics }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn single_path_tree_labels() {
        let topo = Topology::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1)]).unwrap();
        let mut set = TreeSet::new();
        set.add_chain(&[v(3), v(2), v(1), v(0)]);
        set.build();
        let out = label_forest(&topo, &set);
        assert_eq!(out.intervals[0][&v(0)], (0, 4));
        assert_eq!(out.intervals[3][&v(0)], (3, 4));
        // Up + down sweep of a depth-3 path: ~2·depth rounds.
        assert!(out.metrics.rounds <= 2 * 3 + 4);
    }

    #[test]
    fn branching_tree_labels() {
        let topo =
            Topology::from_edges(6, &[(0, 1, 1), (0, 2, 1), (1, 3, 1), (1, 4, 1), (2, 5, 1)])
                .unwrap();
        let mut set = TreeSet::new();
        set.add_chain(&[v(3), v(1), v(0)]);
        set.add_chain(&[v(4), v(1), v(0)]);
        set.add_chain(&[v(5), v(2), v(0)]);
        set.build();
        let out = label_forest(&topo, &set);
        // DFS order: 0, 1, 3, 4, 2, 5.
        assert_eq!(out.intervals[0][&v(0)], (0, 6));
        assert_eq!(out.intervals[1][&v(0)], (1, 4));
        assert_eq!(out.intervals[3][&v(0)], (2, 3));
        assert_eq!(out.intervals[4][&v(0)], (3, 4));
        assert_eq!(out.intervals[2][&v(0)], (4, 6));
        assert_eq!(out.intervals[5][&v(0)], (5, 6));
    }

    #[test]
    fn overlapping_trees_multiplex_edges() {
        // Two trees sharing the spine 0-1-2: messages must serialize.
        let topo = Topology::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1)]).unwrap();
        let mut set = TreeSet::new();
        set.add_chain(&[v(3), v(2), v(1), v(0)]); // rooted at 0
        set.add_chain(&[v(0), v(1), v(2), v(3)]); // rooted at 3
        set.build();
        let out = label_forest(&topo, &set);
        assert_eq!(out.intervals[1].len(), 2);
        assert_eq!(out.intervals[1][&v(0)], (1, 4));
        assert_eq!(out.intervals[1][&v(3)], (2, 4));
    }

    #[test]
    fn singleton_tree_needs_no_messages() {
        let topo = Topology::from_edges(2, &[(0, 1, 1)]).unwrap();
        let mut set = TreeSet::new();
        set.add_chain(&[v(1)]);
        set.build();
        let out = label_forest(&topo, &set);
        assert_eq!(out.intervals[1][&v(1)], (0, 1));
        assert_eq!(out.metrics.messages, 0);
    }
}
