//! Baswana–Sen `(2k−1)`-spanners (Random Structures & Algorithms 2007).
//!
//! Theorem 4.5 of the PODC 2015 paper routes between far-apart skeleton
//! nodes over a `(2k−1)`-spanner of the (virtual) skeleton graph, built by
//! "the simulation of the Baswana-Sen algorithm (ref. 3) given in (ref. 15)" and made
//! known to all nodes. This crate provides:
//!
//! * [`baswana_sen`] — the clustering algorithm itself. All random choices
//!   are per-node coins, and all decisions depend only on information a
//!   skeleton node has locally in the simulation (its incident virtual
//!   edges and the per-phase cluster ids of its neighbors), so the
//!   centralized execution is faithful to the distributed one; what must
//!   be *communicated* is returned as [`SpannerResult::broadcast_items`]
//!   and is shipped (and charged) via the real pipelined broadcast in the
//!   `routing` crate.
//! * [`verify_stretch`] — exact stretch verification against the input
//!   graph (tests enforce `≤ 2k−1`).
//!
//! # Example
//!
//! ```
//! use graphs::gen::{self, Weights};
//! use rand::{rngs::SmallRng, SeedableRng};
//! use spanner::{baswana_sen, verify_stretch};
//!
//! let mut rng = SmallRng::seed_from_u64(7);
//! let g = gen::gnp_connected(40, 0.3, Weights::Uniform { lo: 1, hi: 20 }, &mut rng);
//! let sp = baswana_sen(&g, 2, &mut rng);
//! assert!(sp.edges.len() <= g.num_edges());
//! assert!(verify_stretch(&g, &sp.edges) <= 3.0); // 2k−1 = 3
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baswana;
mod verify;

pub use baswana::{baswana_sen, SpannerResult};
pub use verify::{spanner_graph, verify_stretch};
