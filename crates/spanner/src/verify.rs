//! Spanner verification helpers.

use graphs::algo::apsp;
use graphs::{WGraph, INF};

/// Builds the spanner subgraph over the same vertex set.
///
/// # Panics
///
/// Panics if the edge list is invalid for `g.len()` nodes.
pub fn spanner_graph(g: &WGraph, edges: &[(u32, u32, u64)]) -> WGraph {
    WGraph::from_edges(g.len(), edges).expect("spanner edge list must be valid")
}

/// Maximum multiplicative stretch of the spanner: `max_{u,v}
/// d_spanner(u,v) / d_G(u,v)` over connected pairs.
///
/// `O(n·m log n)` — for tests and experiments on moderate sizes.
///
/// # Panics
///
/// Panics if the spanner disconnects a pair that `g` connects (a spanner
/// never does; loud failure wanted).
pub fn verify_stretch(g: &WGraph, edges: &[(u32, u32, u64)]) -> f64 {
    let h = spanner_graph(g, edges);
    let ag = apsp(g);
    let ah = apsp(&h);
    let mut worst: f64 = 1.0;
    for u in g.nodes() {
        for v in g.nodes() {
            if u >= v || ag.dist(u, v) == INF {
                continue;
            }
            let ds = ah.dist(u, v);
            assert_ne!(ds, INF, "spanner disconnected pair ({u}, {v})");
            worst = worst.max(ds as f64 / ag.dist(u, v) as f64);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_spanner_has_stretch_one() {
        let g = WGraph::from_edges(4, &[(0, 1, 2), (1, 2, 3), (2, 3, 4), (0, 3, 20)]).unwrap();
        assert_eq!(verify_stretch(&g, g.edges()), 1.0);
    }

    #[test]
    fn dropping_a_shortcut_increases_stretch() {
        // Triangle: dropping the direct 0-2 edge forces the 2-hop detour.
        let g = WGraph::from_edges(3, &[(0, 1, 1), (1, 2, 1), (0, 2, 1)]).unwrap();
        let s = verify_stretch(&g, &[(0, 1, 1), (1, 2, 1)]);
        assert_eq!(s, 2.0);
    }

    #[test]
    #[should_panic(expected = "disconnected pair")]
    fn disconnecting_spanner_panics() {
        let g = WGraph::from_edges(3, &[(0, 1, 1), (1, 2, 1)]).unwrap();
        verify_stretch(&g, &[(0, 1, 1)]);
    }
}
