//! The Baswana–Sen clustering algorithm.

use congest::NodeId;
use graphs::WGraph;
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Result of a spanner construction.
#[derive(Clone, Debug)]
pub struct SpannerResult {
    /// Spanner edges `(u, v, w)`, canonical (`u < v`), sorted, deduplicated.
    pub edges: Vec<(u32, u32, u64)>,
    /// The stretch parameter `k` used (`stretch ≤ 2k−1`).
    pub k: u32,
    /// Number of items that must be broadcast for every node to know the
    /// spanner and for the algorithm's phases to proceed: one item per
    /// spanner edge plus one per (node, phase) cluster-membership
    /// announcement. The `routing` crate ships these through the real
    /// pipelined BFS broadcast and charges the measured rounds
    /// (`Õ(|S|^{1+1/k} + D)`, as used in Theorem 4.5).
    pub broadcast_items: usize,
    /// The per-phase cluster-membership announcements `(phase, node,
    /// center)` that must be disseminated alongside the edges.
    pub memberships: Vec<(u32, u32, u32)>,
}

/// Lightest edge from `v` to each adjacent cluster, deterministically
/// tie-broken by `(weight, neighbor id)`.
fn lightest_per_cluster(
    g: &WGraph,
    v: NodeId,
    cluster: &[Option<NodeId>],
    dead: &BTreeSet<(u32, u32)>,
) -> BTreeMap<NodeId, (u64, NodeId)> {
    let mut best: BTreeMap<NodeId, (u64, NodeId)> = BTreeMap::new();
    for (u, w) in g.neighbors(v) {
        let key = (v.0.min(u.0), v.0.max(u.0));
        if dead.contains(&key) {
            continue;
        }
        if let Some(c) = cluster[u.index()] {
            let e = best.entry(c).or_insert((w, u));
            if (w, u) < *e {
                *e = (w, u);
            }
        }
    }
    best
}

/// Runs Baswana–Sen with parameter `k ≥ 1`, producing a spanner with
/// stretch `≤ 2k−1` and expected size `O(k · n^{1+1/k})`.
///
/// `k = 1` returns the whole graph (stretch 1).
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn baswana_sen<R: Rng + ?Sized>(g: &WGraph, k: u32, rng: &mut R) -> SpannerResult {
    assert!(k >= 1, "k must be at least 1");
    let n = g.len();
    if k == 1 {
        return SpannerResult {
            edges: g.edges().to_vec(),
            k,
            broadcast_items: g.num_edges(),
            memberships: Vec::new(),
        };
    }
    let p = (n as f64).powf(-1.0 / f64::from(k));

    // cluster[v] = center of v's current cluster (None = settled).
    let mut cluster: Vec<Option<NodeId>> = g.nodes().map(Some).collect();
    // Edges permanently removed from consideration.
    let mut dead: BTreeSet<(u32, u32)> = BTreeSet::new();
    let mut spanner: BTreeSet<(u32, u32, u64)> = BTreeSet::new();
    let mut memberships: Vec<(u32, u32, u32)> = Vec::new();

    let add_edge = |spanner: &mut BTreeSet<(u32, u32, u64)>, a: NodeId, b: NodeId, w: u64| {
        spanner.insert((a.0.min(b.0), a.0.max(b.0), w));
    };

    for phase in 1..k {
        // Per-center coin: the center's own randomness (node-local).
        let mut sampled: HashMap<NodeId, bool> = HashMap::new();
        for c in cluster.iter().flatten() {
            sampled.entry(*c).or_insert_with(|| rng.random_bool(p));
        }
        let mut next_cluster = cluster.clone();
        for v in g.nodes() {
            let Some(cv) = cluster[v.index()] else {
                continue;
            };
            if sampled[&cv] {
                continue; // members of sampled clusters carry over
            }
            let adjacent = lightest_per_cluster(g, v, &cluster, &dead);
            let best_sampled = adjacent
                .iter()
                .filter(|(c, _)| *sampled.get(c).unwrap_or(&false))
                .map(|(&c, &(w, u))| (w, u, c))
                .min();
            match best_sampled {
                None => {
                    // No sampled cluster nearby: connect to every adjacent
                    // cluster and settle.
                    for (&_c, &(w, u)) in &adjacent {
                        add_edge(&mut spanner, v, u, w);
                    }
                    for (u, _) in g.neighbors(v) {
                        dead.insert((v.0.min(u.0), v.0.max(u.0)));
                    }
                    next_cluster[v.index()] = None;
                }
                Some((w_star, u_star, c_star)) => {
                    // Join the nearest sampled cluster; also connect to
                    // every strictly nearer cluster, then drop those edges.
                    add_edge(&mut spanner, v, u_star, w_star);
                    next_cluster[v.index()] = Some(c_star);
                    for (&c, &(w, u)) in &adjacent {
                        if c == c_star || (w, u) < (w_star, u_star) {
                            if c != c_star {
                                add_edge(&mut spanner, v, u, w);
                            }
                            // Remove all v-edges into cluster c.
                            for (x, _) in g.neighbors(v) {
                                if cluster[x.index()] == Some(c) {
                                    dead.insert((v.0.min(x.0), v.0.max(x.0)));
                                }
                            }
                        }
                    }
                }
            }
        }
        cluster = next_cluster;
        for v in g.nodes() {
            if let Some(c) = cluster[v.index()] {
                memberships.push((phase, v.0, c.0));
            }
        }
        // Remove intra-cluster edges.
        for &(a, b, _) in g.edges() {
            let (ca, cb) = (cluster[a as usize], cluster[b as usize]);
            if ca.is_some() && ca == cb {
                dead.insert((a, b));
            }
        }
    }

    // Final phase: every still-clustered node connects to each adjacent
    // cluster.
    for v in g.nodes() {
        let adjacent = lightest_per_cluster(g, v, &cluster, &dead);
        for (&c, &(w, u)) in &adjacent {
            if cluster[v.index()] == Some(c) {
                continue;
            }
            add_edge(&mut spanner, v, u, w);
        }
    }

    let edges: Vec<(u32, u32, u64)> = spanner.into_iter().collect();
    let broadcast_items = edges.len() + memberships.len();
    SpannerResult {
        edges,
        k,
        broadcast_items,
        memberships,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_stretch;
    use graphs::gen::{self, Weights};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn k1_returns_everything() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = gen::gnp_connected(20, 0.3, Weights::Unit, &mut rng);
        let sp = baswana_sen(&g, 1, &mut rng);
        assert_eq!(sp.edges.len(), g.num_edges());
    }

    #[test]
    fn stretch_bound_holds_across_seeds_k2() {
        for seed in 0..8 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = gen::gnp_connected(30, 0.3, Weights::Uniform { lo: 1, hi: 50 }, &mut rng);
            let sp = baswana_sen(&g, 2, &mut rng);
            let s = verify_stretch(&g, &sp.edges);
            assert!(s <= 3.0 + 1e-9, "stretch {s} > 3 at seed {seed}");
        }
    }

    #[test]
    fn stretch_bound_holds_across_seeds_k3() {
        for seed in 0..8 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = gen::gnp_connected(30, 0.4, Weights::Uniform { lo: 1, hi: 50 }, &mut rng);
            let sp = baswana_sen(&g, 3, &mut rng);
            let s = verify_stretch(&g, &sp.edges);
            assert!(s <= 5.0 + 1e-9, "stretch {s} > 5 at seed {seed}");
        }
    }

    #[test]
    fn spanner_is_sparser_on_dense_graphs() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = gen::complete(40, Weights::Uniform { lo: 1, hi: 9 }, &mut rng);
        let sp = baswana_sen(&g, 2, &mut rng);
        // O(k n^{1+1/k}) = O(2·40^{1.5}) ≈ 506 ≪ 780; use a loose factor.
        assert!(
            sp.edges.len() < g.num_edges(),
            "spanner not sparser: {} vs {}",
            sp.edges.len(),
            g.num_edges()
        );
    }

    #[test]
    fn spanner_edges_are_subset_of_input() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = gen::gnp_connected(25, 0.25, Weights::Uniform { lo: 1, hi: 30 }, &mut rng);
        let sp = baswana_sen(&g, 3, &mut rng);
        for &(a, b, w) in &sp.edges {
            assert_eq!(g.edge_weight(NodeId(a), NodeId(b)), Some(w));
        }
    }

    #[test]
    fn broadcast_items_cover_edges() {
        let mut rng = SmallRng::seed_from_u64(6);
        let g = gen::gnp_connected(20, 0.3, Weights::Unit, &mut rng);
        let sp = baswana_sen(&g, 2, &mut rng);
        assert!(sp.broadcast_items >= sp.edges.len());
    }
}
