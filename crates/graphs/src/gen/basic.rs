//! Deterministic structured families.

use crate::gen::weights::Weights;
use crate::graph::WGraph;
use rand::Rng;

fn build(n: usize, edges: Vec<(u32, u32, u64)>) -> WGraph {
    WGraph::connected_from_edges(n, &edges).expect("generator produced an invalid graph")
}

/// Path on `n ≥ 2` nodes: `0 - 1 - … - (n−1)`.
pub fn path<R: Rng + ?Sized>(n: usize, w: Weights, rng: &mut R) -> WGraph {
    assert!(n >= 2, "path needs at least 2 nodes");
    let edges = (0..n as u32 - 1)
        .map(|i| (i, i + 1, w.sample(rng)))
        .collect();
    build(n, edges)
}

/// Cycle on `n ≥ 3` nodes.
pub fn cycle<R: Rng + ?Sized>(n: usize, w: Weights, rng: &mut R) -> WGraph {
    assert!(n >= 3, "cycle needs at least 3 nodes");
    let mut edges: Vec<(u32, u32, u64)> = (0..n as u32 - 1)
        .map(|i| (i, i + 1, w.sample(rng)))
        .collect();
    edges.push((n as u32 - 1, 0, w.sample(rng)));
    build(n, edges)
}

/// Star on `n ≥ 2` nodes with center 0.
pub fn star<R: Rng + ?Sized>(n: usize, w: Weights, rng: &mut R) -> WGraph {
    assert!(n >= 2, "star needs at least 2 nodes");
    let edges = (1..n as u32).map(|i| (0, i, w.sample(rng))).collect();
    build(n, edges)
}

/// Complete graph on `n ≥ 2` nodes.
pub fn complete<R: Rng + ?Sized>(n: usize, w: Weights, rng: &mut R) -> WGraph {
    assert!(n >= 2, "complete graph needs at least 2 nodes");
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n as u32 {
        for j in i + 1..n as u32 {
            edges.push((i, j, w.sample(rng)));
        }
    }
    build(n, edges)
}

/// `rows × cols` grid (node `(r, c)` has id `r·cols + c`).
pub fn grid<R: Rng + ?Sized>(rows: usize, cols: usize, w: Weights, rng: &mut R) -> WGraph {
    assert!(rows * cols >= 2, "grid needs at least 2 nodes");
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1), w.sample(rng)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c), w.sample(rng)));
            }
        }
    }
    build(rows * cols, edges)
}

/// `rows × cols` torus (grid with wrap-around edges); needs `rows, cols ≥ 3`.
pub fn torus<R: Rng + ?Sized>(rows: usize, cols: usize, w: Weights, rng: &mut R) -> WGraph {
    assert!(rows >= 3 && cols >= 3, "torus needs both sides ≥ 3");
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            edges.push((id(r, c), id(r, (c + 1) % cols), w.sample(rng)));
            edges.push((id(r, c), id((r + 1) % rows, c), w.sample(rng)));
        }
    }
    build(rows * cols, edges)
}

/// Complete `arity`-ary tree of the given `depth` (depth 0 = single root
/// plus one child to keep the graph non-trivial is *not* done: depth ≥ 1).
pub fn balanced_tree<R: Rng + ?Sized>(
    arity: usize,
    depth: usize,
    w: Weights,
    rng: &mut R,
) -> WGraph {
    assert!(
        arity >= 1 && depth >= 1,
        "tree needs arity ≥ 1 and depth ≥ 1"
    );
    let mut edges = Vec::new();
    let mut next = 1u32;
    let mut frontier = vec![0u32];
    for _ in 0..depth {
        let mut new_frontier = Vec::new();
        for &p in &frontier {
            for _ in 0..arity {
                edges.push((p, next, w.sample(rng)));
                new_frontier.push(next);
                next += 1;
            }
        }
        frontier = new_frontier;
    }
    build(next as usize, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;
    use congest::NodeId;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn path_shape() {
        let g = path(5, Weights::Unit, &mut rng());
        assert_eq!(g.len(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(algo::hop_diameter(&g), 4);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6, Weights::Unit, &mut rng());
        assert_eq!(g.num_edges(), 6);
        assert_eq!(algo::hop_diameter(&g), 3);
        assert!(g.nodes().all(|v| g.degree(v) == 2));
    }

    #[test]
    fn star_shape() {
        let g = star(7, Weights::Unit, &mut rng());
        assert_eq!(g.degree(NodeId(0)), 6);
        assert_eq!(algo::hop_diameter(&g), 2);
    }

    #[test]
    fn complete_shape() {
        let g = complete(6, Weights::Uniform { lo: 1, hi: 9 }, &mut rng());
        assert_eq!(g.num_edges(), 15);
        assert_eq!(algo::hop_diameter(&g), 1);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4, Weights::Unit, &mut rng());
        assert_eq!(g.len(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4); // vertical + horizontal
        assert_eq!(algo::hop_diameter(&g), 2 + 3);
    }

    #[test]
    fn torus_shape() {
        let g = torus(3, 3, Weights::Unit, &mut rng());
        assert_eq!(g.len(), 9);
        assert_eq!(g.num_edges(), 18);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
    }

    #[test]
    fn balanced_tree_shape() {
        let g = balanced_tree(2, 3, Weights::Unit, &mut rng());
        assert_eq!(g.len(), 1 + 2 + 4 + 8);
        assert_eq!(g.num_edges(), g.len() - 1);
        assert_eq!(algo::hop_diameter(&g), 6);
    }
}
