//! The Figure 1 lower-bound family of the paper.
//!
//! A graph where exact `(S, h+1, σ)`-detection cannot be solved in `o(hσ)`
//! rounds: all `hσ` source/distance values must cross one bottleneck edge.
//!
//! Construction (following the paper's Figure 1): a chain `v_1 … v_h`, a
//! chain `u_1 … u_h`, a bridge edge `{u_1, v_h}`, and `σ` sources `s_{i,j}`
//! attached to each `v_i` with edge weight `4^i · h` (all other edges have
//! weight 1, i.e. negligible). Node `u_i` reaches the sources `s_{i,·}` in
//! exactly `h + 1` hops, and the exponentially growing attachment weights
//! make `s_{i,·}` precisely the σ closest sources visible to `u_i` within
//! that horizon — so every `u_i` must learn a distinct set of σ values, all
//! of which traverse `{u_1, v_h}`.

use crate::graph::WGraph;
use congest::NodeId;

/// The Figure 1 graph plus the node-role bookkeeping experiments need.
#[derive(Clone, Debug)]
pub struct Figure1 {
    /// The graph itself.
    pub graph: WGraph,
    /// Chain nodes `v_1 … v_h` (index 0 = `v_1`).
    pub v_chain: Vec<NodeId>,
    /// Chain nodes `u_1 … u_h` (index 0 = `u_1`).
    pub u_chain: Vec<NodeId>,
    /// `sources[i][j]` = `s_{i+1, j+1}` attached to `v_{i+1}`.
    pub sources: Vec<Vec<NodeId>>,
    /// The `h` parameter.
    pub h: usize,
    /// The `σ` parameter.
    pub sigma: usize,
}

impl Figure1 {
    /// Source-set indicator vector (all `s_{i,j}` are sources).
    pub fn source_flags(&self) -> Vec<bool> {
        let mut flags = vec![false; self.graph.len()];
        for row in &self.sources {
            for s in row {
                flags[s.index()] = true;
            }
        }
        flags
    }

    /// The detection horizon `h + 1` used in the lower-bound argument.
    pub fn horizon(&self) -> u64 {
        self.h as u64 + 1
    }
}

/// Builds the Figure 1 instance with parameters `h` and `σ`.
///
/// Node ids: `v_i = i − 1`, `u_i = h + i − 1`,
/// `s_{i,j} = 2h + (i−1)σ + (j−1)`; total `n = 2h + hσ`.
///
/// # Panics
///
/// Panics if `h < 2`, `σ < 1`, or `h > 20` (weights `4^h · h` must fit
/// comfortably in `u64` and stay "polynomial in n" in spirit).
pub fn figure1(h: usize, sigma: usize) -> Figure1 {
    assert!((2..=20).contains(&h), "h must be in 2..=20");
    assert!(sigma >= 1, "sigma must be ≥ 1");
    let n = 2 * h + h * sigma;
    let v = |i: usize| (i - 1) as u32; // i in 1..=h
    let u = |i: usize| (h + i - 1) as u32;
    let s = |i: usize, j: usize| (2 * h + (i - 1) * sigma + (j - 1)) as u32;

    let mut edges = Vec::new();
    for i in 1..h {
        edges.push((v(i), v(i + 1), 1));
        edges.push((u(i), u(i + 1), 1));
    }
    edges.push((u(1), v(h), 1)); // the bottleneck bridge
    for i in 1..=h {
        let w = 4u64.pow(i as u32) * h as u64;
        for j in 1..=sigma {
            edges.push((v(i), s(i, j), w));
        }
    }

    let graph = WGraph::connected_from_edges(n, &edges).expect("figure1 produced an invalid graph");
    Figure1 {
        graph,
        v_chain: (1..=h).map(|i| NodeId(v(i))).collect(),
        u_chain: (1..=h).map(|i| NodeId(u(i))).collect(),
        sources: (1..=h)
            .map(|i| (1..=sigma).map(|j| NodeId(s(i, j))).collect())
            .collect(),
        h,
        sigma,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::detection_reference;

    #[test]
    fn shape_is_as_specified() {
        let f = figure1(4, 3);
        assert_eq!(f.graph.len(), 2 * 4 + 4 * 3);
        // Edges: (h-1) per chain ×2 + bridge + h·σ attachments.
        assert_eq!(f.graph.num_edges(), 3 + 3 + 1 + 12);
        assert_eq!(
            f.graph.edge_weight(f.v_chain[1], f.sources[1][0]).unwrap(),
            4u64.pow(2) * 4
        );
    }

    #[test]
    fn u_i_sees_exactly_its_own_sources() {
        // The lower-bound argument: within h+1 hops, the σ closest sources
        // to u_i are exactly s_{i,·}.
        let f = figure1(4, 2);
        let lists = detection_reference(&f.graph, &f.source_flags(), f.horizon(), f.sigma);
        for (idx, &ui) in f.u_chain.iter().enumerate() {
            let i = idx + 1;
            let list = &lists[ui.index()];
            assert_eq!(list.len(), f.sigma, "u_{i} must see σ sources");
            for (_, src) in list {
                assert!(
                    f.sources[idx].contains(src),
                    "u_{i} detected a source outside s_{i},·"
                );
            }
        }
    }

    #[test]
    fn distinct_u_nodes_need_distinct_values() {
        // Total information crossing the bridge: h disjoint σ-sets.
        let f = figure1(3, 2);
        let lists = detection_reference(&f.graph, &f.source_flags(), f.horizon(), f.sigma);
        let mut all: Vec<NodeId> = Vec::new();
        for &ui in &f.u_chain {
            all.extend(lists[ui.index()].iter().map(|&(_, s)| s));
        }
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), f.h * f.sigma);
    }
}
