//! Edge-weight distributions.

use rand::Rng;

/// Distribution of edge weights.
///
/// The paper assumes integer weights polynomial in `n`; all variants
/// produce weights `≥ 1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Weights {
    /// All edges have weight 1 (the unweighted case).
    Unit,
    /// Uniform in `lo..=hi`.
    Uniform {
        /// Smallest weight (≥ 1).
        lo: u64,
        /// Largest weight.
        hi: u64,
    },
    /// `2^e` for `e` uniform in `0..=max_exp` — a heavy-tailed
    /// distribution that exercises many rungs of the PDE weight ladder.
    PowerOfTwo {
        /// Largest exponent.
        max_exp: u32,
    },
}

impl Weights {
    /// Draws one weight.
    ///
    /// # Panics
    ///
    /// Panics if a `Uniform` range is empty or starts at 0.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match *self {
            Weights::Unit => 1,
            Weights::Uniform { lo, hi } => {
                assert!(lo >= 1 && lo <= hi, "invalid uniform weight range");
                rng.random_range(lo..=hi)
            }
            Weights::PowerOfTwo { max_exp } => {
                assert!(max_exp < 63, "exponent too large for u64 weights");
                1u64 << rng.random_range(0..=max_exp)
            }
        }
    }

    /// The largest weight this distribution can produce.
    pub fn max_value(&self) -> u64 {
        match *self {
            Weights::Unit => 1,
            Weights::Uniform { hi, .. } => hi,
            Weights::PowerOfTwo { max_exp } => 1u64 << max_exp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(Weights::Unit.sample(&mut rng), 1);
            let w = Weights::Uniform { lo: 3, hi: 9 }.sample(&mut rng);
            assert!((3..=9).contains(&w));
            let p = Weights::PowerOfTwo { max_exp: 5 }.sample(&mut rng);
            assert!(p.is_power_of_two() && p <= 32);
        }
    }

    #[test]
    fn max_value_matches_distribution() {
        assert_eq!(Weights::Unit.max_value(), 1);
        assert_eq!(Weights::Uniform { lo: 1, hi: 7 }.max_value(), 7);
        assert_eq!(Weights::PowerOfTwo { max_exp: 10 }.max_value(), 1024);
    }
}
