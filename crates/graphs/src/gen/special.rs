//! Adversarial / illustrative families from the paper's discussion.

use crate::gen::weights::Weights;
use crate::graph::WGraph;
use rand::Rng;

/// Two complete graphs of `clique` nodes joined by a path of `path_len`
/// extra nodes. Hop diameter ≈ `path_len + 3`, so it separates algorithms
/// whose round complexity depends on `D` from those that don't.
pub fn dumbbell<R: Rng + ?Sized>(
    clique: usize,
    path_len: usize,
    w: Weights,
    rng: &mut R,
) -> WGraph {
    assert!(clique >= 2, "cliques need ≥ 2 nodes");
    let n = 2 * clique + path_len;
    let mut edges = Vec::new();
    let left = 0..clique as u32;
    let right = clique as u32..2 * clique as u32;
    for i in left.clone() {
        for j in i + 1..clique as u32 {
            edges.push((i, j, w.sample(rng)));
        }
    }
    for i in right.clone() {
        for j in i + 1..2 * clique as u32 {
            edges.push((i, j, w.sample(rng)));
        }
    }
    // Path from node 0 (left clique) to node `clique` (right clique).
    let mut prev = 0u32;
    for p in 0..path_len as u32 {
        let node = 2 * clique as u32 + p;
        edges.push((prev, node, w.sample(rng)));
        prev = node;
    }
    edges.push((prev, clique as u32, w.sample(rng)));
    WGraph::connected_from_edges(n, &edges).expect("dumbbell produced an invalid graph")
}

/// Lollipop: a clique of `clique` nodes with a path of `path_len` nodes
/// hanging off node 0.
pub fn lollipop<R: Rng + ?Sized>(
    clique: usize,
    path_len: usize,
    w: Weights,
    rng: &mut R,
) -> WGraph {
    assert!(clique >= 2 && path_len >= 1, "need clique ≥ 2 and path ≥ 1");
    let n = clique + path_len;
    let mut edges = Vec::new();
    for i in 0..clique as u32 {
        for j in i + 1..clique as u32 {
            edges.push((i, j, w.sample(rng)));
        }
    }
    let mut prev = 0u32;
    for p in 0..path_len as u32 {
        let node = clique as u32 + p;
        edges.push((prev, node, w.sample(rng)));
        prev = node;
    }
    WGraph::connected_from_edges(n, &edges).expect("lollipop produced an invalid graph")
}

/// The "Congested Clique" extreme example from the paper's technical
/// discussion: a complete graph whose hop diameter is 1 but whose shortest
/// path diameter is `Θ(n)`.
///
/// Ring edges `{i, i+1 mod n}` have weight 1; every chord `{i, j}` has
/// weight `n · ring_distance(i, j)`, strictly heavier than the ring path it
/// shortcuts, so all shortest weighted paths follow the ring: `SPD = ⌊n/2⌋`
/// while `D = 1`.
pub fn weighted_clique_multihop(n: usize) -> WGraph {
    assert!(n >= 4, "needs at least 4 nodes");
    let mut edges = Vec::new();
    for i in 0..n as u32 {
        for j in i + 1..n as u32 {
            let ring = (j - i).min(n as u32 - (j - i)) as u64;
            let w = if ring == 1 { 1 } else { n as u64 * ring };
            edges.push((i, j, w));
        }
    }
    WGraph::connected_from_edges(n, &edges).expect("weighted clique produced an invalid graph")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn dumbbell_diameter_tracks_path() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = dumbbell(5, 6, Weights::Unit, &mut rng);
        assert_eq!(g.len(), 16);
        assert_eq!(algo::hop_diameter(&g), 6 + 3);
    }

    #[test]
    fn lollipop_shape() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = lollipop(4, 3, Weights::Unit, &mut rng);
        assert_eq!(g.len(), 7);
        assert_eq!(g.num_edges(), 6 + 3);
        assert!(g.is_connected());
    }

    #[test]
    fn weighted_clique_has_unit_hop_diameter_but_linear_spd() {
        let g = weighted_clique_multihop(10);
        assert_eq!(algo::hop_diameter(&g), 1);
        assert_eq!(algo::shortest_path_diameter(&g) as usize, 5); // ⌊10/2⌋
                                                                  // Shortest weighted path between antipodal ring nodes has weight 5.
        let a = algo::apsp(&g);
        assert_eq!(a.dist(congest::NodeId(0), congest::NodeId(5)), 5);
    }
}
