//! Graph generators used by tests, examples and experiments.
//!
//! All generators return connected [`crate::WGraph`]s and take an explicit
//! RNG so runs are reproducible from a seed.

mod basic;
mod families;
mod figure1;
mod random;
mod special;
mod weights;

pub use basic::{balanced_tree, complete, cycle, grid, path, star, torus};
pub use families::{hypercube, power_law, ring_of_cliques};
pub use figure1::{figure1, Figure1};
pub use random::{gnp_connected, random_tree, watts_strogatz};
pub use special::{dumbbell, lollipop, weighted_clique_multihop};
pub use weights::Weights;
