//! Structured scenario families: scale-free, clustered and hypercube
//! topologies (workloads for the build/serving experiments).

use crate::gen::weights::Weights;
use crate::graph::WGraph;
use rand::Rng;

/// Barabási–Albert preferential attachment: starts from a clique on
/// `attach + 1` nodes, then each new node attaches to `attach` distinct
/// existing nodes chosen proportionally to their current degree (via the
/// repeated-endpoints trick). Produces the heavy-tailed degree
/// distribution of internet-like topologies; always connected.
///
/// # Panics
///
/// Panics unless `attach ≥ 1` and `n > attach + 1`.
pub fn power_law<R: Rng + ?Sized>(n: usize, attach: usize, w: Weights, rng: &mut R) -> WGraph {
    assert!(attach >= 1, "attach must be ≥ 1");
    assert!(n > attach + 1, "need n > attach + 1");
    let mut edges: Vec<(u32, u32, u64)> = Vec::new();
    // Each edge contributes both endpoints: sampling uniformly from this
    // list is degree-proportional sampling.
    let mut endpoints: Vec<u32> = Vec::new();
    let seed_nodes = attach + 1;
    for i in 0..seed_nodes as u32 {
        for j in i + 1..seed_nodes as u32 {
            edges.push((i, j, w.sample(rng)));
            endpoints.push(i);
            endpoints.push(j);
        }
    }
    for v in seed_nodes as u32..n as u32 {
        let mut targets: Vec<u32> = Vec::with_capacity(attach);
        while targets.len() < attach {
            let t = endpoints[rng.random_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for t in targets {
            edges.push((v, t, w.sample(rng)));
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    WGraph::connected_from_edges(n, &edges).expect("BA graph is connected by construction")
}

/// A ring of `cliques` complete graphs of `size` nodes each, consecutive
/// cliques joined by a single bridge edge — high clustering with a long
/// cycle of bottlenecks (the classic mixing-time adversary; stresses the
/// skeleton samplers and the horizon constants).
///
/// # Panics
///
/// Panics unless `cliques ≥ 3` and `size ≥ 2`.
pub fn ring_of_cliques<R: Rng + ?Sized>(
    cliques: usize,
    size: usize,
    w: Weights,
    rng: &mut R,
) -> WGraph {
    assert!(cliques >= 3, "need at least 3 cliques");
    assert!(size >= 2, "cliques need ≥ 2 nodes");
    let n = cliques * size;
    let mut edges = Vec::new();
    for c in 0..cliques {
        let base = (c * size) as u32;
        for i in 0..size as u32 {
            for j in i + 1..size as u32 {
                edges.push((base + i, base + j, w.sample(rng)));
            }
        }
        // Bridge: last node of clique c to first node of clique c+1.
        let next_base = (((c + 1) % cliques) * size) as u32;
        edges.push((base + size as u32 - 1, next_base, w.sample(rng)));
    }
    WGraph::connected_from_edges(n, &edges).expect("ring of cliques is connected by construction")
}

/// The `dim`-dimensional hypercube: `2^dim` nodes, an edge whenever two
/// ids differ in exactly one bit (diameter `dim`, degree `dim` — the
/// low-diameter, vertex-transitive extreme).
///
/// # Panics
///
/// Panics unless `1 ≤ dim ≤ 20`.
pub fn hypercube<R: Rng + ?Sized>(dim: u32, w: Weights, rng: &mut R) -> WGraph {
    assert!((1..=20).contains(&dim), "dim must be in 1..=20");
    let n = 1usize << dim;
    let mut edges = Vec::with_capacity(n * dim as usize / 2);
    for v in 0..n as u32 {
        for b in 0..dim {
            let u = v ^ (1 << b);
            if u > v {
                edges.push((v, u, w.sample(rng)));
            }
        }
    }
    WGraph::connected_from_edges(n, &edges).expect("hypercube is connected by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn power_law_is_connected_sized_and_heavy_tailed() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = power_law(400, 2, Weights::Unit, &mut rng);
        assert_eq!(g.len(), 400);
        assert!(g.is_connected());
        // m = C(3,2) + 2·(n − 3) seed+attachment edges.
        assert_eq!(g.num_edges(), 3 + 2 * (400 - 3));
        // Heavy tail: some hub collects far more than the attach degree.
        let max_deg = g.nodes().map(|v| g.degree(v)).max().unwrap();
        assert!(max_deg >= 20, "no hub emerged (max degree {max_deg})");
        // Determinism per seed.
        let mut rng2 = SmallRng::seed_from_u64(1);
        let g2 = power_law(400, 2, Weights::Unit, &mut rng2);
        assert_eq!(g.edges(), g2.edges());
    }

    #[test]
    fn ring_of_cliques_shape() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = ring_of_cliques(5, 4, Weights::Uniform { lo: 1, hi: 9 }, &mut rng);
        assert_eq!(g.len(), 20);
        assert!(g.is_connected());
        // 5 cliques of C(4,2) = 6 edges plus 5 bridges.
        assert_eq!(g.num_edges(), 5 * 6 + 5);
        // The ring of bottlenecks keeps the hop diameter linear in the
        // number of cliques.
        assert!(algo::hop_diameter(&g) >= 5);
    }

    #[test]
    fn hypercube_shape() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = hypercube(5, Weights::Unit, &mut rng);
        assert_eq!(g.len(), 32);
        assert!(g.is_connected());
        assert_eq!(g.num_edges(), 32 * 5 / 2);
        assert!(g.nodes().all(|v| g.degree(v) == 5));
        assert_eq!(algo::hop_diameter(&g), 5);
    }
}
