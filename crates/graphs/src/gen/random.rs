//! Randomized graph families.

use crate::gen::weights::Weights;
use crate::graph::WGraph;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::BTreeSet;

/// Uniform random spanning tree-ish backbone: a random permutation chain.
/// Guarantees connectivity with exactly `n − 1` edges.
fn backbone<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<(u32, u32)> {
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.shuffle(rng);
    perm.windows(2).map(|w| (w[0], w[1])).collect()
}

/// Connected Erdős–Rényi graph `G(n, p)` with the given weight
/// distribution.
///
/// Edges are sampled independently with probability `p`; a random
/// permutation chain is added first so the result is always connected
/// (the standard "G(n,p) conditioned on connectivity" stand-in).
pub fn gnp_connected<R: Rng + ?Sized>(n: usize, p: f64, w: Weights, rng: &mut R) -> WGraph {
    assert!(n >= 2, "gnp needs at least 2 nodes");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut pairs: BTreeSet<(u32, u32)> = backbone(n, rng)
        .into_iter()
        .map(|(a, b)| (a.min(b), a.max(b)))
        .collect();
    for i in 0..n as u32 {
        for j in i + 1..n as u32 {
            if rng.random_bool(p) {
                pairs.insert((i, j));
            }
        }
    }
    let edges: Vec<(u32, u32, u64)> = pairs
        .into_iter()
        .map(|(a, b)| (a, b, w.sample(rng)))
        .collect();
    WGraph::connected_from_edges(n, &edges).expect("gnp_connected produced an invalid graph")
}

/// Uniformly random labeled tree on `n` nodes (random attachment).
pub fn random_tree<R: Rng + ?Sized>(n: usize, w: Weights, rng: &mut R) -> WGraph {
    assert!(n >= 2, "tree needs at least 2 nodes");
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.shuffle(rng);
    let mut edges = Vec::with_capacity(n - 1);
    for i in 1..n {
        let parent = perm[rng.random_range(0..i)];
        edges.push((parent, perm[i], w.sample(rng)));
    }
    WGraph::connected_from_edges(n, &edges).expect("random_tree produced an invalid graph")
}

/// Watts–Strogatz small-world graph: ring lattice where each node connects
/// to its `k/2` nearest neighbors on each side, with each edge's far
/// endpoint rewired with probability `beta`.
pub fn watts_strogatz<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    beta: f64,
    w: Weights,
    rng: &mut R,
) -> WGraph {
    assert!(k >= 2 && k.is_multiple_of(2), "k must be even and ≥ 2");
    assert!(n > k, "n must exceed k");
    assert!((0.0..=1.0).contains(&beta), "beta must be a probability");
    let mut pairs: BTreeSet<(u32, u32)> = BTreeSet::new();
    for i in 0..n as u32 {
        for d in 1..=(k / 2) as u32 {
            let j = (i + d) % n as u32;
            pairs.insert((i.min(j), i.max(j)));
        }
    }
    let lattice: Vec<(u32, u32)> = pairs.iter().copied().collect();
    for (i, j) in lattice {
        if rng.random_bool(beta) {
            // Rewire the far endpoint to a uniform non-neighbor.
            for _ in 0..16 {
                let t = rng.random_range(0..n as u32);
                let cand = (i.min(t), i.max(t));
                if t != i && !pairs.contains(&cand) {
                    pairs.remove(&(i.min(j), i.max(j)));
                    pairs.insert(cand);
                    break;
                }
            }
        }
    }
    // Keep connectivity with a backbone chain.
    for (a, b) in backbone(n, rng) {
        pairs.insert((a.min(b), a.max(b)));
    }
    let edges: Vec<(u32, u32, u64)> = pairs
        .into_iter()
        .map(|(a, b)| (a, b, w.sample(rng)))
        .collect();
    WGraph::connected_from_edges(n, &edges).expect("watts_strogatz produced an invalid graph")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn gnp_is_connected_across_seeds() {
        for seed in 0..10 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = gnp_connected(30, 0.05, Weights::Uniform { lo: 1, hi: 100 }, &mut rng);
            assert!(g.is_connected());
            assert!(g.num_edges() >= 29);
        }
    }

    #[test]
    fn gnp_density_scales_with_p() {
        let mut rng = SmallRng::seed_from_u64(7);
        let sparse = gnp_connected(60, 0.02, Weights::Unit, &mut rng);
        let dense = gnp_connected(60, 0.5, Weights::Unit, &mut rng);
        assert!(dense.num_edges() > sparse.num_edges() * 3);
    }

    #[test]
    fn random_tree_has_n_minus_1_edges() {
        for seed in 0..5 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = random_tree(40, Weights::Unit, &mut rng);
            assert_eq!(g.num_edges(), 39);
            assert!(g.is_connected());
        }
    }

    #[test]
    fn watts_strogatz_is_connected() {
        for seed in 0..5 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = watts_strogatz(50, 4, 0.2, Weights::Unit, &mut rng);
            assert!(g.is_connected());
        }
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let g1 = gnp_connected(
            25,
            0.1,
            Weights::Uniform { lo: 1, hi: 50 },
            &mut SmallRng::seed_from_u64(3),
        );
        let g2 = gnp_connected(
            25,
            0.1,
            Weights::Uniform { lo: 1, hi: 50 },
            &mut SmallRng::seed_from_u64(3),
        );
        assert_eq!(g1.edges(), g2.edges());
    }
}
