//! Weighted-graph substrate for the PDE reproduction.
//!
//! Provides the graph type ([`WGraph`]) shared by every crate in the
//! workspace, a library of graph [generators](gen) (including the paper's
//! Figure 1 lower-bound family), and centralized [reference
//! algorithms](algo) used as ground truth in tests and experiments:
//! Dijkstra with minimum-hop tie-breaking (which computes the paper's
//! "shortest path distance" `h_{v,w}`), exact APSP, `h`-hop-limited
//! distances `wd_h`, the exact `(S, h, σ)`-detection reference, and the
//! graph parameters `D` (hop diameter), `WD` (weighted diameter) and `SPD`
//! (shortest path diameter) from Section 2.2 of the paper.
//!
//! # Example
//!
//! ```
//! use graphs::{WGraph, algo};
//!
//! # fn main() -> Result<(), graphs::GraphError> {
//! let g = WGraph::from_edges(4, &[(0, 1, 2), (1, 2, 2), (0, 2, 10), (2, 3, 1)])?;
//! let sssp = algo::dijkstra(&g, graphs::NodeId(0));
//! assert_eq!(sssp.dist[3], 5);     // 0→1→2→3
//! assert_eq!(sssp.hops[3], 3);     // over three hops
//! assert_eq!(algo::weighted_diameter(&g), 5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
pub mod delta;
pub mod gen;
mod graph;
mod index;
mod seed;

pub use congest::NodeId;
pub use delta::{DeltaError, GraphDelta};
pub use graph::{GraphError, WGraph, INF};
pub use index::DenseIndex;
pub use seed::Seed;
