//! Dense node-id → small-index maps.

use congest::NodeId;

/// A dense map from [`NodeId`] to a compact index (e.g. a node's position
/// in the sorted skeleton list): one `u32` slot per graph node, sentinel
/// for non-members.
///
/// This replaces `HashMap<NodeId, usize>` on query hot paths — membership
/// tests and index lookups become a single array load. Built once per
/// scheme; `O(n)` space is already dwarfed by the tables it indexes into.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DenseIndex {
    slots: Vec<u32>,
}

impl DenseIndex {
    /// Sentinel marking "not a member".
    pub const NONE: u32 = u32::MAX;

    /// Builds the index over `n` nodes: `ids[i]` maps to `i`.
    ///
    /// # Panics
    ///
    /// Panics if an id is out of range, ids repeat, or there are
    /// `u32::MAX` or more members (builder bugs, not data).
    pub fn new(n: usize, ids: &[NodeId]) -> Self {
        assert!((ids.len() as u64) < u64::from(u32::MAX), "too many members");
        let mut slots = vec![Self::NONE; n];
        for (i, &id) in ids.iter().enumerate() {
            let slot = &mut slots[id.index()];
            assert_eq!(*slot, Self::NONE, "duplicate member {id}");
            *slot = i as u32;
        }
        DenseIndex { slots }
    }

    /// The member index of `v`, if `v` is a member.
    #[inline]
    pub fn get(&self, v: NodeId) -> Option<usize> {
        let raw = self.slots[v.index()];
        (raw != Self::NONE).then_some(raw as usize)
    }

    /// `true` if `v` is a member.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        self.slots[v.index()] != Self::NONE
    }

    /// Number of slots (graph nodes, not members).
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` if the index covers no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_members_and_rejects_non_members() {
        let idx = DenseIndex::new(6, &[NodeId(4), NodeId(1), NodeId(5)]);
        assert_eq!(idx.get(NodeId(4)), Some(0));
        assert_eq!(idx.get(NodeId(1)), Some(1));
        assert_eq!(idx.get(NodeId(5)), Some(2));
        assert_eq!(idx.get(NodeId(0)), None);
        assert!(idx.contains(NodeId(5)));
        assert!(!idx.contains(NodeId(3)));
        assert_eq!(idx.len(), 6);
    }

    #[test]
    #[should_panic(expected = "duplicate member")]
    fn duplicate_members_panic() {
        let _ = DenseIndex::new(4, &[NodeId(2), NodeId(2)]);
    }
}
