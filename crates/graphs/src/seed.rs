//! The shared RNG-seed newtype.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt;

/// A deterministic RNG seed, shared by every randomized construction in
/// the workspace (skeleton sampling, hierarchy levels, spanner coins,
/// evaluation pair sampling).
///
/// Replaces the former mix of bare `u64` seeds and implicitly threaded
/// RNG state: a `Seed` names a reproducible random stream, [`Seed::rng`]
/// instantiates it, and [`Seed::derive`] splits off statistically
/// independent sub-streams so two stages of one build never share coins
/// by accident.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Seed(pub u64);

impl Seed {
    /// A fresh RNG positioned at the start of this seed's stream.
    pub fn rng(self) -> SmallRng {
        SmallRng::seed_from_u64(self.0)
    }

    /// A statistically independent sub-seed for stream `stream`
    /// (SplitMix64 finalizer over the pair — `derive(a) != derive(b)`
    /// whenever `a != b`, and derived seeds don't collide with the raw
    /// value for any realistic inputs).
    #[must_use]
    pub fn derive(self, stream: u64) -> Seed {
        let mut z = self
            .0
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Seed(z ^ (z >> 31))
    }
}

impl From<u64> for Seed {
    fn from(v: u64) -> Self {
        Seed(v)
    }
}

impl fmt::Display for Seed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed:{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Seed(42).rng();
        let mut b = Seed(42).rng();
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derived_streams_differ_from_parent_and_each_other() {
        let s = Seed(7);
        let d0 = s.derive(0);
        let d1 = s.derive(1);
        assert_ne!(d0, d1);
        assert_ne!(d0, s);
        assert_ne!(d1, s);
        // Deterministic: deriving twice gives the same sub-seed.
        assert_eq!(s.derive(1), d1);
        let (x, y) = (d0.rng().next_u64(), d1.rng().next_u64());
        assert_ne!(x, y, "derived streams should decorrelate");
    }

    #[test]
    fn from_u64_and_display() {
        let s: Seed = 0xC0FFEE.into();
        assert_eq!(s, Seed(0xC0FFEE));
        assert_eq!(format!("{s}"), "seed:0xc0ffee");
    }
}
