//! Graph deltas: the mutation vocabulary of the dynamic-graph subsystem.
//!
//! A [`GraphDelta`] describes one atomic change to a live network — an
//! edge weight update, an edge failure, or a node failure — and
//! [`WGraph::apply_delta`] materializes the mutated graph. Every
//! consumer of deltas (the oracle repair path, the serving layer's
//! `repair_and_swap`, the failure-injection suite) goes through this
//! type, so validation lives in exactly one place:
//!
//! - [`GraphDelta::SetWeight`] rewrites the weight of an **existing**
//!   edge (weights stay ≥ 1, as everywhere in the paper).
//! - [`GraphDelta::FailEdge`] removes an existing edge. The mutated
//!   graph must stay connected — every build pipeline in this workspace
//!   requires connectivity, so a partitioning failure is reported as
//!   [`DeltaError::Disconnects`] instead of producing a graph no
//!   backend can rebuild on.
//! - [`GraphDelta::FailNode`] removes a node and its incident edges.
//!   Node ids above the failed node shift down by one (the graph types
//!   use dense `0..n` ids throughout); callers that hold node ids
//!   across a node failure must re-resolve them. The pre-swap serving
//!   window instead masks the node in a
//!   liveness mask without renumbering — see the `oracle` crate's
//!   failover module.
//!
//! Deltas are validated against the graph they are applied to: failing
//! an unknown edge or node, zeroing a weight, or disconnecting the
//! graph are typed [`DeltaError`]s, never panics.

use crate::graph::{GraphError, WGraph};
use congest::NodeId;
use std::fmt;

/// One atomic mutation of a weighted graph.
///
/// See the [module docs](self) for the semantics of each kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphDelta {
    /// Set the weight of the existing edge `{u, v}` to `w` (≥ 1).
    SetWeight {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
        /// The new weight (must be ≥ 1).
        w: u64,
    },
    /// Remove the existing edge `{u, v}`.
    FailEdge {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// Remove node `v` and all its incident edges. Ids above `v` shift
    /// down by one in the mutated graph.
    FailNode {
        /// The failed node.
        v: NodeId,
    },
}

impl GraphDelta {
    /// Short tag for tables and logs (`"set_weight"`, `"fail_edge"`,
    /// `"fail_node"`).
    pub fn kind(&self) -> &'static str {
        match self {
            GraphDelta::SetWeight { .. } => "set_weight",
            GraphDelta::FailEdge { .. } => "fail_edge",
            GraphDelta::FailNode { .. } => "fail_node",
        }
    }
}

impl fmt::Display for GraphDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GraphDelta::SetWeight { u, v, w } => write!(f, "set_weight({u}, {v}) = {w}"),
            GraphDelta::FailEdge { u, v } => write!(f, "fail_edge({u}, {v})"),
            GraphDelta::FailNode { v } => write!(f, "fail_node({v})"),
        }
    }
}

/// Why a [`GraphDelta`] cannot be applied to a particular graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// The delta names an edge the graph does not have.
    UnknownEdge {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// The delta names a node outside `0..n`.
    UnknownNode {
        /// The out-of-range node.
        v: NodeId,
        /// Number of nodes in the graph.
        n: usize,
    },
    /// The new weight is 0 (weights are ≥ 1 everywhere in the paper).
    ZeroWeight,
    /// Applying the delta would disconnect the graph (or empty it).
    Disconnects,
    /// The mutated edge list failed graph validation (unreachable for
    /// deltas produced through this module; kept so the error is typed
    /// instead of a panic).
    Invalid(GraphError),
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::UnknownEdge { u, v } => write!(f, "no edge {{{u}, {v}}} in the graph"),
            DeltaError::UnknownNode { v, n } => write!(f, "node {v} out of range (n = {n})"),
            DeltaError::ZeroWeight => write!(f, "edge weights must be >= 1"),
            DeltaError::Disconnects => write!(f, "delta would disconnect the graph"),
            DeltaError::Invalid(e) => write!(f, "delta produced an invalid graph: {e}"),
        }
    }
}

impl std::error::Error for DeltaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeltaError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl WGraph {
    /// Applies one [`GraphDelta`], returning the mutated graph.
    ///
    /// The receiver is untouched; the result goes through the same
    /// validation as [`WGraph::from_edges`], so downstream builds see a
    /// graph indistinguishable from one constructed from scratch (this
    /// is what makes byte-identical repair provable at all).
    ///
    /// # Errors
    ///
    /// Returns a typed [`DeltaError`] when the delta names an unknown
    /// edge or node, sets a zero weight, or would disconnect the graph.
    pub fn apply_delta(&self, delta: &GraphDelta) -> Result<WGraph, DeltaError> {
        let n = self.len();
        let check_node = |x: NodeId| {
            if x.index() >= n {
                Err(DeltaError::UnknownNode { v: x, n })
            } else {
                Ok(())
            }
        };
        match *delta {
            GraphDelta::SetWeight { u, v, w } => {
                check_node(u)?;
                check_node(v)?;
                if w == 0 {
                    return Err(DeltaError::ZeroWeight);
                }
                if self.edge_weight(u, v).is_none() {
                    return Err(DeltaError::UnknownEdge { u, v });
                }
                let (a, b) = (u.0.min(v.0), u.0.max(v.0));
                let edges: Vec<(u32, u32, u64)> = self
                    .edges()
                    .iter()
                    .map(|&(x, y, wt)| {
                        if (x, y) == (a, b) {
                            (x, y, w)
                        } else {
                            (x, y, wt)
                        }
                    })
                    .collect();
                WGraph::from_edges(n, &edges).map_err(DeltaError::Invalid)
            }
            GraphDelta::FailEdge { u, v } => {
                check_node(u)?;
                check_node(v)?;
                if self.edge_weight(u, v).is_none() {
                    return Err(DeltaError::UnknownEdge { u, v });
                }
                let (a, b) = (u.0.min(v.0), u.0.max(v.0));
                let edges: Vec<(u32, u32, u64)> = self
                    .edges()
                    .iter()
                    .copied()
                    .filter(|&(x, y, _)| (x, y) != (a, b))
                    .collect();
                let g = WGraph::from_edges(n, &edges).map_err(DeltaError::Invalid)?;
                if !g.is_connected() {
                    return Err(DeltaError::Disconnects);
                }
                Ok(g)
            }
            GraphDelta::FailNode { v } => {
                check_node(v)?;
                if n <= 1 {
                    return Err(DeltaError::Disconnects);
                }
                // Drop incident edges and compact the id space.
                let remap = |x: u32| if x > v.0 { x - 1 } else { x };
                let edges: Vec<(u32, u32, u64)> = self
                    .edges()
                    .iter()
                    .copied()
                    .filter(|&(x, y, _)| x != v.0 && y != v.0)
                    .map(|(x, y, w)| (remap(x), remap(y), w))
                    .collect();
                let g = WGraph::from_edges(n - 1, &edges).map_err(DeltaError::Invalid)?;
                if !g.is_connected() {
                    return Err(DeltaError::Disconnects);
                }
                Ok(g)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> WGraph {
        // 0-1, 1-3, 0-2, 2-3, plus a 0-3 chord.
        WGraph::from_edges(4, &[(0, 1, 1), (1, 3, 2), (0, 2, 3), (2, 3, 4), (0, 3, 9)]).unwrap()
    }

    #[test]
    fn set_weight_rewrites_one_edge() {
        let g = diamond()
            .apply_delta(&GraphDelta::SetWeight {
                u: NodeId(3),
                v: NodeId(1),
                w: 7,
            })
            .unwrap();
        assert_eq!(g.edge_weight(NodeId(1), NodeId(3)), Some(7));
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(1));
        assert_eq!(g.num_edges(), 5);
    }

    #[test]
    fn fail_edge_removes_and_keeps_connectivity() {
        let g = diamond()
            .apply_delta(&GraphDelta::FailEdge {
                u: NodeId(0),
                v: NodeId(3),
            })
            .unwrap();
        assert_eq!(g.num_edges(), 4);
        assert!(g.is_connected());
    }

    #[test]
    fn fail_edge_refuses_to_partition() {
        let path = WGraph::from_edges(3, &[(0, 1, 1), (1, 2, 1)]).unwrap();
        let err = path
            .apply_delta(&GraphDelta::FailEdge {
                u: NodeId(0),
                v: NodeId(1),
            })
            .unwrap_err();
        assert_eq!(err, DeltaError::Disconnects);
    }

    #[test]
    fn fail_node_compacts_ids() {
        let g = diamond()
            .apply_delta(&GraphDelta::FailNode { v: NodeId(1) })
            .unwrap();
        assert_eq!(g.len(), 3);
        // Old nodes 2, 3 are now 1, 2; surviving edges 0-2(w3), 2-3(w4), 0-3(w9).
        assert_eq!(g.edges(), &[(0, 1, 3), (0, 2, 9), (1, 2, 4)]);
    }

    #[test]
    fn fail_cut_node_is_rejected() {
        let path = WGraph::from_edges(3, &[(0, 1, 1), (1, 2, 1)]).unwrap();
        let err = path
            .apply_delta(&GraphDelta::FailNode { v: NodeId(1) })
            .unwrap_err();
        assert_eq!(err, DeltaError::Disconnects);
    }

    #[test]
    fn unknown_targets_are_typed_errors() {
        let g = diamond();
        assert_eq!(
            g.apply_delta(&GraphDelta::FailEdge {
                u: NodeId(1),
                v: NodeId(2)
            })
            .unwrap_err(),
            DeltaError::UnknownEdge {
                u: NodeId(1),
                v: NodeId(2)
            }
        );
        assert_eq!(
            g.apply_delta(&GraphDelta::FailNode { v: NodeId(9) })
                .unwrap_err(),
            DeltaError::UnknownNode { v: NodeId(9), n: 4 }
        );
        assert_eq!(
            g.apply_delta(&GraphDelta::SetWeight {
                u: NodeId(0),
                v: NodeId(1),
                w: 0
            })
            .unwrap_err(),
            DeltaError::ZeroWeight
        );
    }

    #[test]
    fn apply_is_pure() {
        let g = diamond();
        let _ = g
            .apply_delta(&GraphDelta::FailEdge {
                u: NodeId(0),
                v: NodeId(3),
            })
            .unwrap();
        assert_eq!(g.num_edges(), 5);
    }
}
