//! The weighted undirected graph type.

use congest::{NodeId, Topology, TopologyError};
use std::fmt;

/// Sentinel for "unreachable" in distance arrays.
///
/// Arithmetic on distances must use [`u64::saturating_add`] so that
/// `INF + w == INF`.
pub const INF: u64 = u64::MAX;

/// Errors produced while validating a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// Underlying structural problem (shared with the simulator topology).
    Topology(TopologyError),
    /// The graph is not connected but the operation requires it.
    Disconnected,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Topology(e) => write!(f, "invalid graph: {e}"),
            GraphError::Disconnected => write!(f, "graph is not connected"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Topology(e) => Some(e),
            GraphError::Disconnected => None,
        }
    }
}

impl From<TopologyError> for GraphError {
    fn from(e: TopologyError) -> Self {
        GraphError::Topology(e)
    }
}

/// A simple, weighted, undirected graph `G = (V, E, W)` with `W: E → ℕ`
/// (weights ≥ 1), as in Section 2 of the paper.
///
/// Internally stored as a CSR adjacency structure plus the undirected edge
/// list. Adjacency lists are sorted by neighbor id, so iteration order is
/// deterministic.
#[derive(Clone, Debug)]
pub struct WGraph {
    n: usize,
    edges: Vec<(u32, u32, u64)>,
    offsets: Vec<u32>,
    targets: Vec<NodeId>,
    weights: Vec<u64>,
    w_max: u64,
}

impl WGraph {
    /// Builds a graph from an undirected edge list.
    ///
    /// # Errors
    ///
    /// Rejects self loops, duplicate pairs, zero weights, out-of-range
    /// endpoints and empty vertex sets (see [`GraphError`]).
    pub fn from_edges(n: usize, edges: &[(u32, u32, u64)]) -> Result<Self, GraphError> {
        // Reuse the topology validation, then build our own CSR.
        let _ = Topology::from_edges(n, edges)?;
        let mut arcs: Vec<(u32, u32, u64)> = Vec::with_capacity(edges.len() * 2);
        let mut canonical = Vec::with_capacity(edges.len());
        for &(u, v, w) in edges {
            arcs.push((u, v, w));
            arcs.push((v, u, w));
            canonical.push((u.min(v), u.max(v), w));
        }
        canonical.sort_unstable();
        arcs.sort_unstable();
        let mut offsets = vec![0u32; n + 1];
        for &(u, _, _) in &arcs {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        Ok(WGraph {
            n,
            w_max: canonical.iter().map(|&(_, _, w)| w).max().unwrap_or(0),
            edges: canonical,
            offsets,
            targets: arcs.iter().map(|&(_, v, _)| NodeId(v)).collect(),
            weights: arcs.iter().map(|&(_, _, w)| w).collect(),
        })
    }

    /// Like [`WGraph::from_edges`] but additionally requires connectivity.
    pub fn connected_from_edges(n: usize, edges: &[(u32, u32, u64)]) -> Result<Self, GraphError> {
        let g = Self::from_edges(n, edges)?;
        if !g.is_connected() {
            return Err(GraphError::Disconnected);
        }
        Ok(g)
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the graph has no nodes (never for valid graphs).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The undirected edge list, as `(min_endpoint, max_endpoint, weight)`,
    /// sorted.
    #[inline]
    pub fn edges(&self) -> &[(u32, u32, u64)] {
        &self.edges
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// Iterates over `(neighbor, weight)` pairs of `v`, sorted by neighbor.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        (lo..hi).map(move |a| (self.targets[a], self.weights[a]))
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.n as u32).map(NodeId)
    }

    /// The weight of edge `{u, v}`, if present.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<u64> {
        let lo = self.offsets[u.index()] as usize;
        let hi = self.offsets[u.index() + 1] as usize;
        self.targets[lo..hi]
            .binary_search(&v)
            .ok()
            .map(|i| self.weights[lo + i])
    }

    /// Largest edge weight (`w_max` in the paper); 0 for edgeless graphs.
    /// Computed once at construction — callers that dispatch on it per
    /// query or per Dijkstra run (e.g. the bucket-queue threshold) pay a
    /// field read, not an edge scan.
    #[inline]
    pub fn max_weight(&self) -> u64 {
        self.w_max
    }

    /// `true` if the graph is connected.
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return false;
        }
        let mut seen = vec![false; self.n];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for (u, _) in self.neighbors(v) {
                if !seen[u.index()] {
                    seen[u.index()] = true;
                    count += 1;
                    stack.push(u);
                }
            }
        }
        count == self.n
    }

    /// Converts to a simulator [`Topology`] (unit delays).
    pub fn to_topology(&self) -> Topology {
        Topology::from_edges(self.n, &self.edges).expect("validated graph converts to topology")
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> u64 {
        self.edges.iter().map(|&(_, _, w)| w).sum()
    }

    /// Serializes the graph (node count + canonical edge list) with the
    /// snapshot wire format of [`congest::wire`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn write_into(&self, sink: &mut dyn std::io::Write) -> std::io::Result<()> {
        let mut w = congest::wire::WireWriter::new(sink);
        w.usize(self.n)?;
        w.len(self.edges.len())?;
        for &(a, b, wt) in &self.edges {
            w.u32(a)?;
            w.u32(b)?;
            w.u64(wt)?;
        }
        Ok(())
    }

    /// Deserializes a graph written by [`WGraph::write_into`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed bytes or an invalid edge list.
    pub fn read_from(source: &mut dyn std::io::Read) -> std::io::Result<Self> {
        let mut r = congest::wire::WireReader::new(source);
        let n = r.usize()?;
        if n > congest::wire::MAX_SNAPSHOT_NODES {
            return Err(congest::wire::invalid_data(format!(
                "graph snapshot claims {n} nodes"
            )));
        }
        let m = r.len(n.saturating_mul(n))?;
        let mut edges = Vec::with_capacity(congest::wire::clamped_capacity(m));
        for _ in 0..m {
            let a = r.u32()?;
            let b = r.u32()?;
            let wt = r.u64()?;
            edges.push((a, b, wt));
        }
        WGraph::from_edges(n, &edges)
            .map_err(|e| congest::wire::invalid_data(format!("bad graph snapshot: {e}")))
    }

    /// Emits the graph into a v3 arena: a `[n]` meta section plus the
    /// canonical edge list split SoA (endpoints, weights).
    pub fn write_arena(&self, a: &mut congest::arena::ArenaWriter) {
        a.u64s(&[self.n as u64]);
        let endpoints: Vec<u32> = self.edges.iter().flat_map(|&(a, b, _)| [a, b]).collect();
        let weights: Vec<u64> = self.edges.iter().map(|&(_, _, w)| w).collect();
        a.u32s(&endpoints);
        a.u64s(&weights);
    }

    /// Reads what [`WGraph::write_arena`] wrote, re-validating through
    /// [`WGraph::from_edges`] (the edge list is small relative to the
    /// tables keyed on it, so the `O(m log m)` rebuild stays off the
    /// cold-start critical path).
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed sections or an invalid edge
    /// list.
    pub fn read_arena(c: &mut congest::arena::ArenaCursor<'_>) -> std::io::Result<Self> {
        let meta = c.u64s()?;
        let [n] = meta[..] else {
            return Err(congest::wire::invalid_data("graph meta section misshapen"));
        };
        let n = usize::try_from(n).map_err(|_| congest::wire::invalid_data("graph n overflow"))?;
        if n > congest::wire::MAX_SNAPSHOT_NODES {
            return Err(congest::wire::invalid_data(format!(
                "graph snapshot claims {n} nodes"
            )));
        }
        let endpoints = c.u32s()?;
        let weights = c.u64s()?;
        if endpoints.len() != weights.len() * 2 {
            return Err(congest::wire::invalid_data(
                "graph SoA sections disagree on length",
            ));
        }
        let edges: Vec<(u32, u32, u64)> = endpoints
            .chunks_exact(2)
            .zip(&weights)
            .map(|(ab, &w)| (ab[0], ab[1], w))
            .collect();
        WGraph::from_edges(n, &edges)
            .map_err(|e| congest::wire::invalid_data(format!("bad graph snapshot: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_adjacency_matches_edges() {
        let g = WGraph::from_edges(4, &[(0, 1, 3), (2, 1, 5), (3, 0, 7)]).unwrap();
        assert_eq!(g.len(), 4);
        assert_eq!(g.num_edges(), 3);
        let nbrs: Vec<_> = g.neighbors(NodeId(1)).collect();
        assert_eq!(nbrs, vec![(NodeId(0), 3), (NodeId(2), 5)]);
        assert_eq!(g.degree(NodeId(0)), 2);
        assert_eq!(g.edge_weight(NodeId(3), NodeId(0)), Some(7));
        assert_eq!(g.edge_weight(NodeId(3), NodeId(1)), None);
        assert_eq!(g.max_weight(), 7);
        assert_eq!(g.total_weight(), 15);
    }

    #[test]
    fn edge_list_is_canonical_and_sorted() {
        let g = WGraph::from_edges(3, &[(2, 0, 1), (1, 0, 2)]).unwrap();
        assert_eq!(g.edges(), &[(0, 1, 2), (0, 2, 1)]);
    }

    #[test]
    fn rejects_duplicates_regardless_of_direction() {
        assert!(WGraph::from_edges(3, &[(0, 1, 1), (1, 0, 2)]).is_err());
    }

    #[test]
    fn connectivity_check() {
        let g = WGraph::from_edges(4, &[(0, 1, 1), (2, 3, 1)]).unwrap();
        assert!(!g.is_connected());
        assert!(matches!(
            WGraph::connected_from_edges(4, &[(0, 1, 1), (2, 3, 1)]),
            Err(GraphError::Disconnected)
        ));
    }

    #[test]
    fn topology_conversion_preserves_weights() {
        let g = WGraph::from_edges(3, &[(0, 1, 9), (1, 2, 4)]).unwrap();
        let t = g.to_topology();
        assert_eq!(t.num_edges(), 2);
        let p = t.port_to(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(t.weight(NodeId(0), p), 9);
    }
}
