//! Global graph parameters from Section 2.2 of the paper.

use crate::algo::apsp::apsp;
use crate::algo::hops::bfs_hops;
use crate::graph::WGraph;

/// The hop diameter `D`: `max_{v,w} hd(v, w)`.
///
/// This is the `D` in the paper's `O(√n + D)`-style bounds.
///
/// # Panics
///
/// Panics if the graph is disconnected.
pub fn hop_diameter(g: &WGraph) -> u32 {
    let mut d = 0;
    for v in g.nodes() {
        let row = bfs_hops(g, v);
        for x in row {
            assert_ne!(x, u32::MAX, "hop diameter of a disconnected graph");
            d = d.max(x);
        }
    }
    d
}

/// The weighted diameter `WD`: `max_{v,w} wd(v, w)`.
///
/// # Panics
///
/// Panics if the graph is disconnected.
pub fn weighted_diameter(g: &WGraph) -> u64 {
    let a = apsp(g);
    for v in g.nodes() {
        for w in g.nodes() {
            assert_ne!(
                a.dist(v, w),
                crate::graph::INF,
                "weighted diameter of a disconnected graph"
            );
        }
    }
    a.weighted_diameter()
}

/// The shortest path diameter `SPD`: `max_{v,w} h_{v,w}` — the maximum,
/// over pairs, of the minimum hop count among shortest weighted paths.
///
/// `D ≤ SPD ≤ n − 1`, and `SPD` can be `Θ(n)` even when `D = 1` (the
/// weighted-clique example in [`crate::gen::weighted_clique_multihop`]).
///
/// # Panics
///
/// Panics if the graph is disconnected.
pub fn shortest_path_diameter(g: &WGraph) -> u32 {
    let a = apsp(g);
    let spd = a.shortest_path_diameter();
    for v in g.nodes() {
        for w in g.nodes() {
            assert_ne!(
                a.hops(v, w),
                u32::MAX,
                "shortest path diameter of a disconnected graph"
            );
        }
    }
    spd
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_graph_parameters() {
        let g = WGraph::from_edges(4, &[(0, 1, 5), (1, 2, 5), (2, 3, 5)]).unwrap();
        assert_eq!(hop_diameter(&g), 3);
        assert_eq!(weighted_diameter(&g), 15);
        assert_eq!(shortest_path_diameter(&g), 3);
    }

    #[test]
    fn spd_exceeds_hop_diameter_on_weighted_clique() {
        // Triangle where the direct 0-2 edge is heavy: D = 1 but SPD = 2.
        let g = WGraph::from_edges(3, &[(0, 1, 1), (1, 2, 1), (0, 2, 10)]).unwrap();
        assert_eq!(hop_diameter(&g), 1);
        assert_eq!(shortest_path_diameter(&g), 2);
        assert_eq!(weighted_diameter(&g), 2);
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn hop_diameter_rejects_disconnected() {
        let g = WGraph::from_edges(3, &[(0, 1, 1)]).unwrap();
        hop_diameter(&g);
    }
}
