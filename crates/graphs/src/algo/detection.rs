//! Exact `(S, h, σ)`-detection reference (Definition 2.1 of the paper).

use crate::algo::dijkstra::dijkstra;
use congest::NodeId;

use crate::graph::WGraph;

/// Per-node detection output: the top-σ prefix of `L_v^{(h)}`.
pub type DetectionList = Vec<(u64, NodeId)>;

/// Computes, for every node `v`, the list `L_v`: the lexicographically
/// smallest `σ` pairs `(wd(v, s), s)` over sources `s ∈ S` with
/// `h_{v,s} ≤ h` (Definition 2.1).
///
/// Runs one Dijkstra per source (`O(|S|·m log n)`); used as ground truth
/// for the distributed detection and PDE algorithms.
///
/// # Panics
///
/// Panics if `sources.len() != g.len()`.
pub fn detection_reference(
    g: &WGraph,
    sources: &[bool],
    h: u64,
    sigma: usize,
) -> Vec<DetectionList> {
    assert_eq!(sources.len(), g.len(), "one source flag per node");
    let mut lists: Vec<DetectionList> = vec![Vec::new(); g.len()];
    for s in g.nodes() {
        if !sources[s.index()] {
            continue;
        }
        let sp = dijkstra(g, s);
        for v in g.nodes() {
            if sp.hops[v.index()] != u32::MAX && u64::from(sp.hops[v.index()]) <= h {
                lists[v.index()].push((sp.dist[v.index()], s));
            }
        }
    }
    for list in &mut lists {
        list.sort_unstable();
        list.truncate(sigma);
    }
    lists
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path 0-1-2-3 with unit weights; sources {0, 3}.
    fn path4() -> (WGraph, Vec<bool>) {
        let g = WGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1)]).unwrap();
        (g, vec![true, false, false, true])
    }

    #[test]
    fn full_horizon_lists_all_sources() {
        let (g, s) = path4();
        let lists = detection_reference(&g, &s, 10, 10);
        assert_eq!(lists[1], vec![(1, NodeId(0)), (2, NodeId(3))]);
        assert_eq!(lists[0], vec![(0, NodeId(0)), (3, NodeId(3))]);
    }

    #[test]
    fn hop_horizon_filters() {
        let (g, s) = path4();
        let lists = detection_reference(&g, &s, 1, 10);
        assert_eq!(lists[1], vec![(1, NodeId(0))]);
        assert_eq!(lists[2], vec![(1, NodeId(3))]);
    }

    #[test]
    fn sigma_truncates() {
        let (g, s) = path4();
        let lists = detection_reference(&g, &s, 10, 1);
        assert_eq!(lists[1], vec![(1, NodeId(0))]);
    }

    #[test]
    fn ties_break_by_node_id() {
        // Node 1 is equidistant (weight 1) from sources 0 and 2.
        let g = WGraph::from_edges(3, &[(0, 1, 1), (1, 2, 1)]).unwrap();
        let lists = detection_reference(&g, &[true, false, true], 5, 1);
        assert_eq!(lists[1], vec![(1, NodeId(0))]);
    }

    #[test]
    fn horizon_uses_minhop_shortest_paths() {
        // wd(0,3) = 3 via the 3-hop unit path; the direct edge has weight 10.
        // h_{0,3} = 3, so with h = 1 source 3 must NOT appear at node 0,
        // even though a 1-hop path exists (the detection horizon is over
        // minimum-hop *shortest weighted* paths).
        let g = WGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (0, 3, 10)]).unwrap();
        let lists = detection_reference(&g, &[false, false, false, true], 1, 4);
        assert!(lists[0].is_empty());
        let lists3 = detection_reference(&g, &[false, false, false, true], 3, 4);
        assert_eq!(lists3[0], vec![(3, NodeId(3))]);
    }
}
