//! Dijkstra with minimum-hop tie-breaking.
//!
//! Two interchangeable priority queues back the search:
//!
//! * a **bucket queue** (Dial's algorithm) specialized for the bounded
//!   integer weights the generators produce — `w_max + 1` circular
//!   buckets indexed by tentative distance, each drained in sorted
//!   `(hops, id)` order, so settling order (and therefore every
//!   `dist`/`hops`/`parent` entry) is *identical* to the binary-heap
//!   search;
//! * the classic [`BinaryHeap`] fallback, used when the largest edge
//!   weight exceeds [`DIAL_WEIGHT_LIMIT`] (huge weights would make the
//!   empty-bucket scan between occupied distances the dominant cost).
//!
//! The equivalence is pinned by in-module tests at weight bounds 1, 32
//! and both sides of the threshold.

use crate::graph::{WGraph, INF};
use congest::NodeId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Largest edge weight for which [`dijkstra`] uses the bucket queue; any
/// graph with `max_weight()` above this falls back to the binary heap.
///
/// The bucket queue walks every tentative distance between occupied
/// buckets, so its overhead is `O(WD)` per source — bounded weights keep
/// that linear in the graph, unbounded ones would not.
pub const DIAL_WEIGHT_LIMIT: u64 = 512;

/// Single-source shortest-path result.
///
/// `hops[v]` is the paper's *shortest path distance* `h_{v,s}`: the minimum
/// hop-length among all minimum-weight `v`–`s` paths (Section 2.2). This is
/// the quantity the `(S, h, σ)`-detection horizon is defined over, so the
/// tie-breaking here is part of the specification, not an implementation
/// detail.
#[derive(Clone, Debug)]
pub struct Sssp {
    /// The source node.
    pub source: NodeId,
    /// `dist[v]` = weighted distance `wd(source, v)`; [`INF`] if unreachable.
    pub dist: Vec<u64>,
    /// `hops[v]` = minimum hops among shortest weighted paths (`h_{source,v}`).
    pub hops: Vec<u32>,
    /// A predecessor on a minimum-hop shortest weighted path.
    pub parent: Vec<Option<NodeId>>,
}

/// Runs Dijkstra from `source`, minimizing `(weight, hops)` lexicographically.
///
/// Picks the bucket queue for graphs whose largest weight is at most
/// [`DIAL_WEIGHT_LIMIT`] and the binary heap otherwise; both produce
/// bit-identical results.
pub fn dijkstra(g: &WGraph, source: NodeId) -> Sssp {
    let w_max = g.max_weight();
    if w_max <= DIAL_WEIGHT_LIMIT {
        dijkstra_buckets(g, source, w_max)
    } else {
        dijkstra_heap(g, source)
    }
}

/// The binary-heap search (reference implementation and large-weight
/// fallback).
fn dijkstra_heap(g: &WGraph, source: NodeId) -> Sssp {
    let n = g.len();
    let mut dist = vec![INF; n];
    let mut hops = vec![u32::MAX; n];
    let mut parent = vec![None; n];
    let mut done = vec![false; n];
    let mut heap: BinaryHeap<Reverse<(u64, u32, u32)>> = BinaryHeap::new();

    dist[source.index()] = 0;
    hops[source.index()] = 0;
    heap.push(Reverse((0, 0, source.0)));

    while let Some(Reverse((d, h, v))) = heap.pop() {
        let v = NodeId(v);
        if done[v.index()] {
            continue;
        }
        done[v.index()] = true;
        debug_assert_eq!((d, h), (dist[v.index()], hops[v.index()]));
        for (u, w) in g.neighbors(v) {
            if done[u.index()] {
                continue;
            }
            let nd = d.saturating_add(w);
            let nh = h + 1;
            if (nd, nh) < (dist[u.index()], hops[u.index()]) {
                dist[u.index()] = nd;
                hops[u.index()] = nh;
                parent[u.index()] = Some(v);
                heap.push(Reverse((nd, nh, u.0)));
            }
        }
    }
    Sssp {
        source,
        dist,
        hops,
        parent,
    }
}

/// Dial's algorithm: `w_max + 1` circular buckets keyed by tentative
/// distance. Weights are ≥ 1, so relaxing a node settled at distance `d`
/// never feeds bucket `d` again, and every pending entry lies within
/// `d..=d + w_max` — one bucket per distance, no collisions. Each bucket
/// is drained in sorted `(hops, id)` order, reproducing the heap's global
/// `(dist, hops, id)` settling order exactly.
fn dijkstra_buckets(g: &WGraph, source: NodeId, w_max: u64) -> Sssp {
    let n = g.len();
    let mut dist = vec![INF; n];
    let mut hops = vec![u32::MAX; n];
    let mut parent = vec![None; n];
    let mut done = vec![false; n];
    let num = w_max.max(1) as usize + 1;
    let mut buckets: Vec<Vec<(u32, u32)>> = vec![Vec::new(); num];
    let mut drain: Vec<(u32, u32)> = Vec::new();

    dist[source.index()] = 0;
    hops[source.index()] = 0;
    buckets[0].push((0, source.0));
    let mut pending = 1usize;
    let mut d = 0u64;

    while pending > 0 {
        let slot = (d % num as u64) as usize;
        if buckets[slot].is_empty() {
            d += 1;
            continue;
        }
        drain.clear();
        drain.append(&mut buckets[slot]);
        pending -= drain.len();
        drain.sort_unstable();
        for &(h, v) in &drain {
            let v = NodeId(v);
            if done[v.index()] {
                continue; // superseded by a better entry (lazy deletion)
            }
            done[v.index()] = true;
            debug_assert_eq!((d, h), (dist[v.index()], hops[v.index()]));
            for (u, w) in g.neighbors(v) {
                if done[u.index()] {
                    continue;
                }
                let nd = d + w;
                let nh = h + 1;
                if (nd, nh) < (dist[u.index()], hops[u.index()]) {
                    dist[u.index()] = nd;
                    hops[u.index()] = nh;
                    parent[u.index()] = Some(v);
                    buckets[(nd % num as u64) as usize].push((nh, u.0));
                    pending += 1;
                }
            }
        }
        d += 1;
    }
    Sssp {
        source,
        dist,
        hops,
        parent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{self, Weights};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn shortest_distances_on_small_graph() {
        // 0 -2- 1 -2- 2, plus direct 0-2 edge of weight 10.
        let g = WGraph::from_edges(3, &[(0, 1, 2), (1, 2, 2), (0, 2, 10)]).unwrap();
        let s = dijkstra(&g, NodeId(0));
        assert_eq!(s.dist, vec![0, 2, 4]);
        assert_eq!(s.hops, vec![0, 1, 2]);
        assert_eq!(s.parent[2], Some(NodeId(1)));
    }

    #[test]
    fn tie_break_minimizes_hops() {
        // Two shortest paths 0→3 of weight 4: 0-1-3 (2 hops) and
        // 0-2a-2b-3 style (3 hops). The reported hops must be 2.
        let g = WGraph::from_edges(5, &[(0, 1, 2), (1, 4, 2), (0, 2, 1), (2, 3, 2), (3, 4, 1)])
            .unwrap();
        let s = dijkstra(&g, NodeId(0));
        assert_eq!(s.dist[4], 4);
        assert_eq!(s.hops[4], 2, "must pick the 2-hop shortest path");
    }

    #[test]
    fn unreachable_nodes_are_inf() {
        let g = WGraph::from_edges(3, &[(0, 1, 1)]).unwrap();
        let s = dijkstra(&g, NodeId(0));
        assert_eq!(s.dist[2], INF);
        assert_eq!(s.hops[2], u32::MAX);
        assert_eq!(s.parent[2], None);
    }

    #[test]
    fn parents_trace_back_to_source() {
        let g = WGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (0, 3, 5)]).unwrap();
        let s = dijkstra(&g, NodeId(0));
        let mut v = NodeId(3);
        let mut steps = 0;
        while let Some(p) = s.parent[v.index()] {
            v = p;
            steps += 1;
        }
        assert_eq!(v, NodeId(0));
        assert_eq!(steps, s.hops[3]);
    }

    /// The buckets and the heap must agree field-for-field — including
    /// `parent`, whose value depends on the settling *order*, not just the
    /// final distances.
    fn assert_equivalent(g: &WGraph, what: &str) {
        let w_max = g.max_weight();
        for v in g.nodes() {
            let a = dijkstra_heap(g, v);
            let b = dijkstra_buckets(g, v, w_max);
            assert_eq!(a.dist, b.dist, "{what}: dist from {v}");
            assert_eq!(a.hops, b.hops, "{what}: hops from {v}");
            assert_eq!(a.parent, b.parent, "{what}: parent from {v}");
        }
    }

    #[test]
    fn buckets_match_heap_at_weight_bound_one() {
        for seed in 0..3u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = gen::gnp_connected(40, 0.12, Weights::Unit, &mut rng);
            assert_equivalent(&g, &format!("unit weights, seed {seed}"));
        }
    }

    #[test]
    fn buckets_match_heap_at_weight_bound_32() {
        for seed in 0..3u64 {
            let mut rng = SmallRng::seed_from_u64(10 + seed);
            let g = gen::gnp_connected(40, 0.12, Weights::Uniform { lo: 1, hi: 32 }, &mut rng);
            assert_equivalent(&g, &format!("weights 1..=32, seed {seed}"));
        }
    }

    #[test]
    fn buckets_match_heap_at_the_threshold_boundary() {
        // Exactly at the limit the dispatcher picks buckets; one past it,
        // the heap. Both must agree with the reference at both bounds.
        for hi in [DIAL_WEIGHT_LIMIT, DIAL_WEIGHT_LIMIT + 1] {
            let mut rng = SmallRng::seed_from_u64(99);
            let g = gen::gnp_connected(32, 0.15, Weights::Uniform { lo: 1, hi }, &mut rng);
            assert_equivalent(&g, &format!("weights 1..={hi}"));
            // And the public entry point agrees with the reference heap.
            for v in g.nodes() {
                let a = dijkstra(&g, v);
                let b = dijkstra_heap(&g, v);
                assert_eq!(a.dist, b.dist);
                assert_eq!(a.hops, b.hops);
                assert_eq!(a.parent, b.parent);
            }
        }
    }

    #[test]
    fn buckets_handle_disconnected_and_power_of_two_weights() {
        let g = WGraph::from_edges(5, &[(0, 1, 4), (1, 2, 8)]).unwrap();
        assert_equivalent(&g, "disconnected");
        let mut rng = SmallRng::seed_from_u64(5);
        let g = gen::gnp_connected(30, 0.15, Weights::PowerOfTwo { max_exp: 8 }, &mut rng);
        assert_equivalent(&g, "power-of-two weights");
    }
}
