//! Dijkstra with minimum-hop tie-breaking.

use crate::graph::{WGraph, INF};
use congest::NodeId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Single-source shortest-path result.
///
/// `hops[v]` is the paper's *shortest path distance* `h_{v,s}`: the minimum
/// hop-length among all minimum-weight `v`–`s` paths (Section 2.2). This is
/// the quantity the `(S, h, σ)`-detection horizon is defined over, so the
/// tie-breaking here is part of the specification, not an implementation
/// detail.
#[derive(Clone, Debug)]
pub struct Sssp {
    /// The source node.
    pub source: NodeId,
    /// `dist[v]` = weighted distance `wd(source, v)`; [`INF`] if unreachable.
    pub dist: Vec<u64>,
    /// `hops[v]` = minimum hops among shortest weighted paths (`h_{source,v}`).
    pub hops: Vec<u32>,
    /// A predecessor on a minimum-hop shortest weighted path.
    pub parent: Vec<Option<NodeId>>,
}

/// Runs Dijkstra from `source`, minimizing `(weight, hops)` lexicographically.
pub fn dijkstra(g: &WGraph, source: NodeId) -> Sssp {
    let n = g.len();
    let mut dist = vec![INF; n];
    let mut hops = vec![u32::MAX; n];
    let mut parent = vec![None; n];
    let mut done = vec![false; n];
    let mut heap: BinaryHeap<Reverse<(u64, u32, u32)>> = BinaryHeap::new();

    dist[source.index()] = 0;
    hops[source.index()] = 0;
    heap.push(Reverse((0, 0, source.0)));

    while let Some(Reverse((d, h, v))) = heap.pop() {
        let v = NodeId(v);
        if done[v.index()] {
            continue;
        }
        done[v.index()] = true;
        debug_assert_eq!((d, h), (dist[v.index()], hops[v.index()]));
        for (u, w) in g.neighbors(v) {
            if done[u.index()] {
                continue;
            }
            let nd = d.saturating_add(w);
            let nh = h + 1;
            if (nd, nh) < (dist[u.index()], hops[u.index()]) {
                dist[u.index()] = nd;
                hops[u.index()] = nh;
                parent[u.index()] = Some(v);
                heap.push(Reverse((nd, nh, u.0)));
            }
        }
    }
    Sssp {
        source,
        dist,
        hops,
        parent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shortest_distances_on_small_graph() {
        // 0 -2- 1 -2- 2, plus direct 0-2 edge of weight 10.
        let g = WGraph::from_edges(3, &[(0, 1, 2), (1, 2, 2), (0, 2, 10)]).unwrap();
        let s = dijkstra(&g, NodeId(0));
        assert_eq!(s.dist, vec![0, 2, 4]);
        assert_eq!(s.hops, vec![0, 1, 2]);
        assert_eq!(s.parent[2], Some(NodeId(1)));
    }

    #[test]
    fn tie_break_minimizes_hops() {
        // Two shortest paths 0→3 of weight 4: 0-1-3 (2 hops) and
        // 0-2a-2b-3 style (3 hops). The reported hops must be 2.
        let g = WGraph::from_edges(5, &[(0, 1, 2), (1, 4, 2), (0, 2, 1), (2, 3, 2), (3, 4, 1)])
            .unwrap();
        let s = dijkstra(&g, NodeId(0));
        assert_eq!(s.dist[4], 4);
        assert_eq!(s.hops[4], 2, "must pick the 2-hop shortest path");
    }

    #[test]
    fn unreachable_nodes_are_inf() {
        let g = WGraph::from_edges(3, &[(0, 1, 1)]).unwrap();
        let s = dijkstra(&g, NodeId(0));
        assert_eq!(s.dist[2], INF);
        assert_eq!(s.hops[2], u32::MAX);
        assert_eq!(s.parent[2], None);
    }

    #[test]
    fn parents_trace_back_to_source() {
        let g = WGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (0, 3, 5)]).unwrap();
        let s = dijkstra(&g, NodeId(0));
        let mut v = NodeId(3);
        let mut steps = 0;
        while let Some(p) = s.parent[v.index()] {
            v = p;
            steps += 1;
        }
        assert_eq!(v, NodeId(0));
        assert_eq!(steps, s.hops[3]);
    }
}
