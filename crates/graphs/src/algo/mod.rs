//! Centralized reference algorithms (ground truth for the distributed ones).

mod apsp;
mod detection;
mod dijkstra;
mod hops;
mod props;

pub use apsp::{apsp, apsp_with_first_hops, first_hops_from_dist, sssp_with_first_hops, Apsp};
pub use detection::{detection_reference, DetectionList};
pub use dijkstra::{dijkstra, Sssp, DIAL_WEIGHT_LIMIT};
pub use hops::{bfs_hops, hop_limited_distances};
pub use props::{hop_diameter, shortest_path_diameter, weighted_diameter};
