//! Exact all-pairs shortest paths (reference).

use crate::algo::dijkstra::dijkstra;
use crate::graph::{WGraph, INF};
use congest::NodeId;

/// Exact APSP result: distance and minimum-hop matrices.
#[derive(Clone, Debug)]
pub struct Apsp {
    dist: Vec<u64>,
    hops: Vec<u32>,
    n: usize,
}

impl Apsp {
    /// `wd(u, v)`; [`INF`] if unreachable.
    #[inline]
    pub fn dist(&self, u: NodeId, v: NodeId) -> u64 {
        self.dist[u.index() * self.n + v.index()]
    }

    /// `h_{u,v}`: minimum hops among shortest weighted `u`–`v` paths.
    #[inline]
    pub fn hops(&self, u: NodeId, v: NodeId) -> u32 {
        self.hops[u.index() * self.n + v.index()]
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the instance is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Maximum finite distance (the weighted diameter `WD`).
    pub fn weighted_diameter(&self) -> u64 {
        self.dist
            .iter()
            .copied()
            .filter(|&d| d != INF)
            .max()
            .unwrap_or(0)
    }

    /// Maximum finite hop count (the shortest path diameter `SPD`).
    pub fn shortest_path_diameter(&self) -> u32 {
        self.hops
            .iter()
            .copied()
            .filter(|&h| h != u32::MAX)
            .max()
            .unwrap_or(0)
    }

    /// Serializes the distance and hop matrices (snapshot wire format).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn write_into(&self, sink: &mut dyn std::io::Write) -> std::io::Result<()> {
        let mut w = congest::wire::WireWriter::new(sink);
        w.usize(self.n)?;
        for &d in &self.dist {
            w.u64(d)?;
        }
        for &h in &self.hops {
            w.u32(h)?;
        }
        Ok(())
    }

    /// Deserializes a matrix pair written by [`Apsp::write_into`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed bytes.
    pub fn read_from(source: &mut dyn std::io::Read) -> std::io::Result<Self> {
        let mut r = congest::wire::WireReader::new(source);
        let n = r.usize()?;
        if n > congest::wire::MAX_SNAPSHOT_NODES {
            return Err(congest::wire::invalid_data(format!(
                "APSP snapshot claims {n} nodes"
            )));
        }
        let cells = n
            .checked_mul(n)
            .ok_or_else(|| congest::wire::invalid_data("APSP size overflow"))?;
        let mut dist = Vec::with_capacity(congest::wire::clamped_capacity(cells));
        for _ in 0..cells {
            dist.push(r.u64()?);
        }
        let mut hops = Vec::with_capacity(congest::wire::clamped_capacity(cells));
        for _ in 0..cells {
            hops.push(r.u32()?);
        }
        Ok(Apsp { dist, hops, n })
    }

    /// Emits the matrices into a v3 arena: `[n]` meta, distances, hops.
    pub fn write_arena(&self, a: &mut congest::arena::ArenaWriter) {
        a.u64s(&[self.n as u64]);
        a.u64s(&self.dist);
        a.u32s(&self.hops);
    }

    /// Reads what [`Apsp::write_arena`] wrote.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed sections.
    pub fn read_arena(c: &mut congest::arena::ArenaCursor<'_>) -> std::io::Result<Self> {
        let meta = c.u64s()?;
        let [n] = meta[..] else {
            return Err(congest::wire::invalid_data("APSP meta section misshapen"));
        };
        let n = usize::try_from(n).map_err(|_| congest::wire::invalid_data("APSP n overflow"))?;
        if n > congest::wire::MAX_SNAPSHOT_NODES {
            return Err(congest::wire::invalid_data(format!(
                "APSP snapshot claims {n} nodes"
            )));
        }
        let cells = congest::wire::seq_product(n, n, "APSP")?;
        let dist = c.u64s()?;
        let hops = c.u32s()?;
        if dist.len() != cells || hops.len() != cells {
            return Err(congest::wire::invalid_data("APSP cell count mismatch"));
        }
        Ok(Apsp { dist, hops, n })
    }
}

/// Computes exact APSP by `n` Dijkstra runs (`O(n · m log n)`).
pub fn apsp(g: &WGraph) -> Apsp {
    let n = g.len();
    let mut dist = Vec::with_capacity(n * n);
    let mut hops = Vec::with_capacity(n * n);
    for v in g.nodes() {
        let s = dijkstra(g, v);
        dist.extend_from_slice(&s.dist);
        hops.extend_from_slice(&s.hops);
    }
    Apsp { dist, hops, n }
}

/// Exact APSP plus the first-hop matrix, from the *same* `n` Dijkstra
/// runs — `first_hops[u·n + v]` is the first hop on a shortest `u → v`
/// path (`u32::MAX` on the diagonal and for unreachable pairs).
///
/// Schemes that need both (exact baselines, flooding-style local
/// routing) should call this instead of running a second sweep just to
/// walk parents. First hops propagate down the shortest-path tree in
/// distance order (`next(v) = next(parent(v))`), so the extra cost over
/// plain [`apsp`] is one sort per source — not a parent walk per pair.
pub fn apsp_with_first_hops(g: &WGraph) -> (Apsp, Vec<u32>) {
    let n = g.len();
    let mut dist = Vec::with_capacity(n * n);
    let mut hops = Vec::with_capacity(n * n);
    let mut next = vec![u32::MAX; n * n];
    let mut order: Vec<u32> = (0..n as u32).collect();
    for u in g.nodes() {
        let s = dijkstra(g, u);
        // Parents have strictly smaller distance (weights ≥ 1), so
        // processing in distance order sees next(parent) before next(v).
        order.sort_unstable_by_key(|&v| s.dist[v as usize]);
        let row = &mut next[u.index() * n..(u.index() + 1) * n];
        for &v in &order {
            let Some(p) = s.parent[v as usize] else {
                continue; // the source itself, or unreachable
            };
            row[v as usize] = if p == u { v } else { row[p.index()] };
        }
        dist.extend_from_slice(&s.dist);
        hops.extend_from_slice(&s.hops);
    }
    (Apsp { dist, hops, n }, next)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apsp_matches_dijkstra_rows() {
        let g = WGraph::from_edges(4, &[(0, 1, 3), (1, 2, 4), (2, 3, 5), (0, 3, 20)]).unwrap();
        let a = apsp(&g);
        for v in g.nodes() {
            let s = dijkstra(&g, v);
            for u in g.nodes() {
                assert_eq!(a.dist(v, u), s.dist[u.index()]);
                assert_eq!(a.hops(v, u), s.hops[u.index()]);
            }
        }
    }

    #[test]
    fn apsp_is_symmetric() {
        let g = WGraph::from_edges(5, &[(0, 1, 2), (1, 2, 3), (2, 3, 4), (3, 4, 5), (0, 4, 9)])
            .unwrap();
        let a = apsp(&g);
        for v in g.nodes() {
            for u in g.nodes() {
                assert_eq!(a.dist(v, u), a.dist(u, v));
            }
        }
    }

    #[test]
    fn first_hops_match_parent_walks() {
        let g = WGraph::from_edges(
            6,
            &[
                (0, 1, 2),
                (1, 2, 3),
                (2, 3, 1),
                (3, 4, 4),
                (4, 5, 1),
                (5, 0, 5),
                (0, 3, 20),
            ],
        )
        .unwrap();
        let (a, next) = apsp_with_first_hops(&g);
        let n = g.len();
        for u in g.nodes() {
            let s = dijkstra(&g, u);
            for v in g.nodes() {
                assert_eq!(a.dist(u, v), s.dist[v.index()]);
                let got = next[u.index() * n + v.index()];
                if u == v {
                    assert_eq!(got, u32::MAX);
                } else {
                    // Reference: walk parents back from v until u.
                    let mut cur = v;
                    while let Some(p) = s.parent[cur.index()] {
                        if p == u {
                            break;
                        }
                        cur = p;
                    }
                    assert_eq!(got, cur.0, "first hop {u} -> {v}");
                }
            }
        }
    }

    #[test]
    fn diameters_from_matrix() {
        // Path 0-1-2 with weights 1, 10.
        let g = WGraph::from_edges(3, &[(0, 1, 1), (1, 2, 10)]).unwrap();
        let a = apsp(&g);
        assert_eq!(a.weighted_diameter(), 11);
        assert_eq!(a.shortest_path_diameter(), 2);
    }
}
