//! Exact all-pairs shortest paths (reference).

use crate::algo::dijkstra::dijkstra;
use crate::graph::{WGraph, INF};
use congest::NodeId;

/// Exact APSP result: distance and minimum-hop matrices.
#[derive(Clone, Debug)]
pub struct Apsp {
    dist: Vec<u64>,
    hops: Vec<u32>,
    n: usize,
}

impl Apsp {
    /// `wd(u, v)`; [`INF`] if unreachable.
    #[inline]
    pub fn dist(&self, u: NodeId, v: NodeId) -> u64 {
        self.dist[u.index() * self.n + v.index()]
    }

    /// `h_{u,v}`: minimum hops among shortest weighted `u`–`v` paths.
    #[inline]
    pub fn hops(&self, u: NodeId, v: NodeId) -> u32 {
        self.hops[u.index() * self.n + v.index()]
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the instance is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Maximum finite distance (the weighted diameter `WD`).
    pub fn weighted_diameter(&self) -> u64 {
        self.dist
            .iter()
            .copied()
            .filter(|&d| d != INF)
            .max()
            .unwrap_or(0)
    }

    /// Maximum finite hop count (the shortest path diameter `SPD`).
    pub fn shortest_path_diameter(&self) -> u32 {
        self.hops
            .iter()
            .copied()
            .filter(|&h| h != u32::MAX)
            .max()
            .unwrap_or(0)
    }
}

/// Computes exact APSP by `n` Dijkstra runs (`O(n · m log n)`).
pub fn apsp(g: &WGraph) -> Apsp {
    let n = g.len();
    let mut dist = Vec::with_capacity(n * n);
    let mut hops = Vec::with_capacity(n * n);
    for v in g.nodes() {
        let s = dijkstra(g, v);
        dist.extend_from_slice(&s.dist);
        hops.extend_from_slice(&s.hops);
    }
    Apsp { dist, hops, n }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apsp_matches_dijkstra_rows() {
        let g = WGraph::from_edges(4, &[(0, 1, 3), (1, 2, 4), (2, 3, 5), (0, 3, 20)]).unwrap();
        let a = apsp(&g);
        for v in g.nodes() {
            let s = dijkstra(&g, v);
            for u in g.nodes() {
                assert_eq!(a.dist(v, u), s.dist[u.index()]);
                assert_eq!(a.hops(v, u), s.hops[u.index()]);
            }
        }
    }

    #[test]
    fn apsp_is_symmetric() {
        let g = WGraph::from_edges(5, &[(0, 1, 2), (1, 2, 3), (2, 3, 4), (3, 4, 5), (0, 4, 9)])
            .unwrap();
        let a = apsp(&g);
        for v in g.nodes() {
            for u in g.nodes() {
                assert_eq!(a.dist(v, u), a.dist(u, v));
            }
        }
    }

    #[test]
    fn diameters_from_matrix() {
        // Path 0-1-2 with weights 1, 10.
        let g = WGraph::from_edges(3, &[(0, 1, 1), (1, 2, 10)]).unwrap();
        let a = apsp(&g);
        assert_eq!(a.weighted_diameter(), 11);
        assert_eq!(a.shortest_path_diameter(), 2);
    }
}
