//! Exact all-pairs shortest paths (reference).

use crate::algo::dijkstra::{dijkstra, Sssp};
use crate::graph::{WGraph, INF};
use congest::NodeId;

/// Exact APSP result: distance and minimum-hop matrices.
#[derive(Clone, Debug)]
pub struct Apsp {
    dist: Vec<u64>,
    hops: Vec<u32>,
    n: usize,
}

impl Apsp {
    /// `wd(u, v)`; [`INF`] if unreachable.
    #[inline]
    pub fn dist(&self, u: NodeId, v: NodeId) -> u64 {
        self.dist[u.index() * self.n + v.index()]
    }

    /// `h_{u,v}`: minimum hops among shortest weighted `u`–`v` paths.
    #[inline]
    pub fn hops(&self, u: NodeId, v: NodeId) -> u32 {
        self.hops[u.index() * self.n + v.index()]
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the instance is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Maximum finite distance (the weighted diameter `WD`).
    pub fn weighted_diameter(&self) -> u64 {
        self.dist
            .iter()
            .copied()
            .filter(|&d| d != INF)
            .max()
            .unwrap_or(0)
    }

    /// Maximum finite hop count (the shortest path diameter `SPD`).
    pub fn shortest_path_diameter(&self) -> u32 {
        self.hops
            .iter()
            .copied()
            .filter(|&h| h != u32::MAX)
            .max()
            .unwrap_or(0)
    }

    /// Serializes the distance and hop matrices (snapshot wire format).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn write_into(&self, sink: &mut dyn std::io::Write) -> std::io::Result<()> {
        let mut w = congest::wire::WireWriter::new(sink);
        w.usize(self.n)?;
        for &d in &self.dist {
            w.u64(d)?;
        }
        for &h in &self.hops {
            w.u32(h)?;
        }
        Ok(())
    }

    /// Deserializes a matrix pair written by [`Apsp::write_into`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed bytes.
    pub fn read_from(source: &mut dyn std::io::Read) -> std::io::Result<Self> {
        let mut r = congest::wire::WireReader::new(source);
        let n = r.usize()?;
        if n > congest::wire::MAX_SNAPSHOT_NODES {
            return Err(congest::wire::invalid_data(format!(
                "APSP snapshot claims {n} nodes"
            )));
        }
        let cells = n
            .checked_mul(n)
            .ok_or_else(|| congest::wire::invalid_data("APSP size overflow"))?;
        let mut dist = Vec::with_capacity(congest::wire::clamped_capacity(cells));
        for _ in 0..cells {
            dist.push(r.u64()?);
        }
        let mut hops = Vec::with_capacity(congest::wire::clamped_capacity(cells));
        for _ in 0..cells {
            hops.push(r.u32()?);
        }
        Ok(Apsp { dist, hops, n })
    }

    /// Emits the matrices into a v3 arena: `[n]` meta, distances, hops.
    pub fn write_arena(&self, a: &mut congest::arena::ArenaWriter) {
        a.u64s(&[self.n as u64]);
        a.u64s(&self.dist);
        a.u32s(&self.hops);
    }

    /// Reads what [`Apsp::write_arena`] wrote.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed sections.
    pub fn read_arena(c: &mut congest::arena::ArenaCursor<'_>) -> std::io::Result<Self> {
        let meta = c.u64s()?;
        let [n] = meta[..] else {
            return Err(congest::wire::invalid_data("APSP meta section misshapen"));
        };
        let n = usize::try_from(n).map_err(|_| congest::wire::invalid_data("APSP n overflow"))?;
        if n > congest::wire::MAX_SNAPSHOT_NODES {
            return Err(congest::wire::invalid_data(format!(
                "APSP snapshot claims {n} nodes"
            )));
        }
        let cells = congest::wire::seq_product(n, n, "APSP")?;
        let dist = c.u64s()?;
        let hops = c.u32s()?;
        if dist.len() != cells || hops.len() != cells {
            return Err(congest::wire::invalid_data("APSP cell count mismatch"));
        }
        Ok(Apsp { dist, hops, n })
    }
}

/// Computes exact APSP by `n` Dijkstra runs (`O(n · m log n)`).
pub fn apsp(g: &WGraph) -> Apsp {
    let n = g.len();
    let mut dist = Vec::with_capacity(n * n);
    let mut hops = Vec::with_capacity(n * n);
    for v in g.nodes() {
        let s = dijkstra(g, v);
        dist.extend_from_slice(&s.dist);
        hops.extend_from_slice(&s.hops);
    }
    Apsp { dist, hops, n }
}

/// Exact APSP plus the first-hop matrix, from the *same* `n` Dijkstra
/// runs — `first_hops[u·n + v]` is the first hop on a shortest `u → v`
/// path (`u32::MAX` on the diagonal and for unreachable pairs).
///
/// Schemes that need both (exact baselines, flooding-style local
/// routing) should call this instead of running a second sweep just to
/// walk parents. First hops propagate down the shortest-path tree in
/// distance order (`next(v) = next(parent(v))`), so the extra cost over
/// plain [`apsp`] is one sort per source — not a parent walk per pair.
pub fn apsp_with_first_hops(g: &WGraph) -> (Apsp, Vec<u32>) {
    let n = g.len();
    let mut dist = Vec::with_capacity(n * n);
    let mut hops = Vec::with_capacity(n * n);
    let mut next = vec![u32::MAX; n * n];
    let mut order: Vec<u32> = (0..n as u32).collect();
    for u in g.nodes() {
        let s = dijkstra(g, u);
        first_hop_row(
            &s,
            u,
            &mut order,
            &mut next[u.index() * n..(u.index() + 1) * n],
        );
        dist.extend_from_slice(&s.dist);
        hops.extend_from_slice(&s.hops);
    }
    (Apsp { dist, hops, n }, next)
}

/// Fills one first-hop row from a finished Dijkstra run. `order` is
/// scratch (any permutation of `0..n`; left sorted by distance), `row`
/// must hold `n` slots and is fully overwritten.
fn first_hop_row(s: &Sssp, u: NodeId, order: &mut [u32], row: &mut [u32]) {
    // Parents have strictly smaller distance (weights ≥ 1), so
    // processing in distance order sees next(parent) before next(v).
    // Ties never depend on each other, so any distance order yields the
    // same row.
    order.sort_unstable_by_key(|&v| s.dist[v as usize]);
    row.fill(u32::MAX);
    for &v in order.iter() {
        let Some(p) = s.parent[v as usize] else {
            continue; // the source itself, or unreachable
        };
        row[v as usize] = if p == u { v } else { row[p.index()] };
    }
}

/// One source row of [`apsp_with_first_hops`]: the Dijkstra run for `u`
/// plus the derived first-hop row. The output is bit-identical to the
/// corresponding row of a full sweep — this is the kernel the
/// delta-repair path uses to recompute only affected rows.
pub fn sssp_with_first_hops(g: &WGraph, u: NodeId) -> (Sssp, Vec<u32>) {
    let s = dijkstra(g, u);
    let mut order: Vec<u32> = (0..g.len() as u32).collect();
    let mut row = vec![u32::MAX; g.len()];
    first_hop_row(&s, u, &mut order, &mut row);
    (s, row)
}

/// Re-derives the first-hop row for source `u` from an already-known
/// exact distance row, without rerunning Dijkstra.
///
/// Under the search's lexicographic `(dist, hops, id)` settling order,
/// `hops` and `parent` are pure functions of the graph and the distance
/// row:
///
/// * `hops[v] = 1 + min{ hops[p] : p ∼ v, dist[p] + w(p, v) = dist[v] }`
///   — tight predecessors settle strictly earlier (weights are ≥ 1), so
///   the recursion is well-founded in distance order;
/// * `parent[v]` is the tight predecessor whose relaxation *first*
///   offered the final `(dist[v], hops[v])`: among the minimum-hop tight
///   predecessors, the earliest-settled one, i.e. the one minimizing
///   `(dist[p], p.id)`.
///
/// Processing vertices in distance order therefore reproduces both
/// bit-for-bit (pinned against [`sssp_with_first_hops`] by in-module
/// tests), and the first-hop row follows by the same tree propagation
/// the full kernel uses. The delta-repair path uses this to fix rows
/// whose distances survived an edge change but whose canonical
/// shortest-path tree crossed the changed edge — one `O(m + n log n)`
/// pass instead of a Dijkstra run.
pub fn first_hops_from_dist(g: &WGraph, u: NodeId, dist: &[u64]) -> Vec<u32> {
    let n = g.len();
    debug_assert_eq!(dist.len(), n);
    let order = reachable_by_distance(dist, n);
    let mut hops = vec![u32::MAX; n];
    let mut row = vec![u32::MAX; n];
    hops[u.index()] = 0;
    for &vi in &order {
        let v = NodeId(vi);
        if v == u || dist[v.index()] == INF {
            continue;
        }
        let dv = dist[v.index()];
        let mut best_h = u32::MAX;
        let mut best: Option<(u64, u32)> = None;
        for (p, w) in g.neighbors(v) {
            let dp = dist[p.index()];
            if dp == INF || dp.saturating_add(w) != dv {
                continue;
            }
            let hp = hops[p.index()] + 1;
            let cand = (dp, p.0);
            if hp < best_h {
                best_h = hp;
                best = Some(cand);
            } else if hp == best_h && best.is_some_and(|b| cand < b) {
                best = Some(cand);
            }
        }
        let (_, pid) = best.expect("a finite distance has a tight predecessor");
        hops[v.index()] = best_h;
        row[v.index()] = if pid == u.0 { vi } else { row[pid as usize] };
    }
    row
}

/// The reachable vertices in nondecreasing distance order. Ties carry no
/// dependencies (tight predecessors are strictly closer), so a counting
/// sort over the `0..=WD` distance range serves when the diameter is
/// small — the typical case for bounded weights, and the difference
/// between this derivation and a Dijkstra run at repair time; huge
/// diameters fall back to a comparison sort.
fn reachable_by_distance(dist: &[u64], n: usize) -> Vec<u32> {
    let wd = dist
        .iter()
        .copied()
        .filter(|&d| d != INF)
        .max()
        .unwrap_or(0);
    if wd >= 4 * n as u64 {
        let mut order: Vec<u32> = (0..n as u32).filter(|&v| dist[v as usize] != INF).collect();
        order.sort_unstable_by_key(|&v| dist[v as usize]);
        return order;
    }
    let mut start = vec![0u32; wd as usize + 2];
    for &d in dist {
        if d != INF {
            start[d as usize + 1] += 1;
        }
    }
    for i in 1..start.len() {
        start[i] += start[i - 1];
    }
    let mut order = vec![0u32; start[wd as usize + 1] as usize];
    for (v, &d) in dist.iter().enumerate() {
        if d != INF {
            let slot = &mut start[d as usize];
            order[*slot as usize] = v as u32;
            *slot += 1;
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apsp_matches_dijkstra_rows() {
        let g = WGraph::from_edges(4, &[(0, 1, 3), (1, 2, 4), (2, 3, 5), (0, 3, 20)]).unwrap();
        let a = apsp(&g);
        for v in g.nodes() {
            let s = dijkstra(&g, v);
            for u in g.nodes() {
                assert_eq!(a.dist(v, u), s.dist[u.index()]);
                assert_eq!(a.hops(v, u), s.hops[u.index()]);
            }
        }
    }

    #[test]
    fn apsp_is_symmetric() {
        let g = WGraph::from_edges(5, &[(0, 1, 2), (1, 2, 3), (2, 3, 4), (3, 4, 5), (0, 4, 9)])
            .unwrap();
        let a = apsp(&g);
        for v in g.nodes() {
            for u in g.nodes() {
                assert_eq!(a.dist(v, u), a.dist(u, v));
            }
        }
    }

    #[test]
    fn first_hops_match_parent_walks() {
        let g = WGraph::from_edges(
            6,
            &[
                (0, 1, 2),
                (1, 2, 3),
                (2, 3, 1),
                (3, 4, 4),
                (4, 5, 1),
                (5, 0, 5),
                (0, 3, 20),
            ],
        )
        .unwrap();
        let (a, next) = apsp_with_first_hops(&g);
        let n = g.len();
        for u in g.nodes() {
            let s = dijkstra(&g, u);
            for v in g.nodes() {
                assert_eq!(a.dist(u, v), s.dist[v.index()]);
                let got = next[u.index() * n + v.index()];
                if u == v {
                    assert_eq!(got, u32::MAX);
                } else {
                    // Reference: walk parents back from v until u.
                    let mut cur = v;
                    while let Some(p) = s.parent[cur.index()] {
                        if p == u {
                            break;
                        }
                        cur = p;
                    }
                    assert_eq!(got, cur.0, "first hop {u} -> {v}");
                }
            }
        }
    }

    /// The distance-row derivation must agree with the Dijkstra kernel
    /// bit-for-bit — including on unit weights, where tie-breaks (not
    /// distances) decide every hop.
    #[test]
    fn first_hops_from_dist_matches_the_kernel() {
        use crate::gen::{self, Weights};
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        for (seed, weights) in [
            (0u64, Weights::Unit),
            (1, Weights::Unit),
            (2, Weights::Uniform { lo: 1, hi: 7 }),
            (3, Weights::PowerOfTwo { max_exp: 4 }),
        ] {
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = gen::gnp_connected(40, 0.12, weights, &mut rng);
            for u in g.nodes() {
                let (s, row) = sssp_with_first_hops(&g, u);
                let derived = first_hops_from_dist(&g, u, &s.dist);
                assert_eq!(derived, row, "source {u}, seed {seed}");
            }
        }
        // Disconnected pieces stay u32::MAX.
        let g = WGraph::from_edges(4, &[(0, 1, 2), (2, 3, 1)]).unwrap();
        let (s, row) = sssp_with_first_hops(&g, NodeId(0));
        assert_eq!(first_hops_from_dist(&g, NodeId(0), &s.dist), row);
    }

    #[test]
    fn diameters_from_matrix() {
        // Path 0-1-2 with weights 1, 10.
        let g = WGraph::from_edges(3, &[(0, 1, 1), (1, 2, 10)]).unwrap();
        let a = apsp(&g);
        assert_eq!(a.weighted_diameter(), 11);
        assert_eq!(a.shortest_path_diameter(), 2);
    }
}
