//! Hop distances and hop-limited weighted distances.

use crate::graph::{WGraph, INF};
use congest::NodeId;
use std::collections::VecDeque;

/// Unweighted BFS: `hd(source, v)` for every `v` (`u32::MAX` if unreachable).
pub fn bfs_hops(g: &WGraph, source: NodeId) -> Vec<u32> {
    let mut d = vec![u32::MAX; g.len()];
    let mut q = VecDeque::new();
    d[source.index()] = 0;
    q.push_back(source);
    while let Some(v) = q.pop_front() {
        for (u, _) in g.neighbors(v) {
            if d[u.index()] == u32::MAX {
                d[u.index()] = d[v.index()] + 1;
                q.push_back(u);
            }
        }
    }
    d
}

/// `h`-hop-limited weighted distances `wd_h(source, ·)`: the minimum weight
/// of any `source`–`v` path with at most `h` hops ([`INF`] if none).
///
/// This is the relaxed distance notion of the paper's technical discussion
/// (Section 1): it is *not* a metric, and computing it exactly for σ
/// sources costs `Θ(σh)` rounds distributedly in the worst case (Figure 1),
/// which is precisely the bottleneck PDE circumvents. Implemented as `h`
/// rounds of Bellman–Ford (`O(h·m)`).
pub fn hop_limited_distances(g: &WGraph, source: NodeId, h: u32) -> Vec<u64> {
    let n = g.len();
    let mut cur = vec![INF; n];
    cur[source.index()] = 0;
    for _ in 0..h {
        let mut next = cur.clone();
        let mut changed = false;
        for v in g.nodes() {
            let dv = cur[v.index()];
            if dv == INF {
                continue;
            }
            for (u, w) in g.neighbors(v) {
                let cand = dv.saturating_add(w);
                if cand < next[u.index()] {
                    next[u.index()] = cand;
                    changed = true;
                }
            }
        }
        cur = next;
        if !changed {
            break;
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dijkstra;

    #[test]
    fn bfs_counts_hops() {
        let g = WGraph::from_edges(4, &[(0, 1, 100), (1, 2, 100), (0, 3, 1)]).unwrap();
        let d = bfs_hops(&g, NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 1]);
    }

    #[test]
    fn hop_limit_cuts_long_paths() {
        // Cheap 3-hop path vs expensive 1-hop edge.
        let g = WGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (0, 3, 10)]).unwrap();
        let d1 = hop_limited_distances(&g, NodeId(0), 1);
        assert_eq!(d1[3], 10);
        let d2 = hop_limited_distances(&g, NodeId(0), 2);
        assert_eq!(d2[3], 10);
        let d3 = hop_limited_distances(&g, NodeId(0), 3);
        assert_eq!(d3[3], 3);
    }

    #[test]
    fn unlimited_hops_equal_dijkstra() {
        let g = WGraph::from_edges(
            5,
            &[(0, 1, 2), (1, 2, 2), (2, 3, 2), (3, 4, 2), (0, 4, 100)],
        )
        .unwrap();
        let bf = hop_limited_distances(&g, NodeId(0), g.len() as u32);
        let dj = dijkstra(&g, NodeId(0));
        assert_eq!(bf, dj.dist);
    }

    #[test]
    fn zero_hops_reaches_only_source() {
        let g = WGraph::from_edges(2, &[(0, 1, 1)]).unwrap();
        let d = hop_limited_distances(&g, NodeId(0), 0);
        assert_eq!(d, vec![0, INF]);
    }
}
