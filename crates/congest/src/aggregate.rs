//! Convergecast / broadcast aggregation over a BFS tree.
//!
//! Computing a global aggregate (e.g. `w_max`, needed to size the weight
//! ladder in Section 3 of the paper, or `|S|` in the skeleton schemes) takes
//! `O(D)` rounds: converge partial aggregates up the BFS tree, then
//! broadcast the result back down. Both phases are implemented as real
//! message-passing programs.

use crate::bfs::BfsTree;
use crate::metrics::Metrics;
use crate::model::Port;
use crate::program::{Ctx, Program};
use crate::runtime::{Config, Runtime};
use crate::topology::Topology;

/// Associative combining operator for aggregation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Maximum of the inputs.
    Max,
    /// Minimum of the inputs.
    Min,
    /// Sum of the inputs (saturating).
    Sum,
}

impl Op {
    fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            Op::Max => a.max(b),
            Op::Min => a.min(b),
            Op::Sum => a.saturating_add(b),
        }
    }
}

/// Convergecast program: combines child values up the tree.
struct ConvergeProgram {
    parent_port: Option<Port>,
    pending_children: usize,
    acc: u64,
    op: Op,
    sent: bool,
    done_value: Option<u64>,
}

impl Program for ConvergeProgram {
    type Msg = u64;

    fn round(&mut self, ctx: &mut Ctx<'_, u64>) {
        for a in ctx.inbox() {
            self.acc = self.op.apply(self.acc, a.msg);
            self.pending_children -= 1;
        }
        if self.pending_children == 0 && !self.sent {
            self.sent = true;
            match self.parent_port {
                Some(p) => ctx.send(p, self.acc),
                None => self.done_value = Some(self.acc),
            }
        }
    }
}

/// Broadcast program: pushes the root value down the tree.
struct BroadcastProgram {
    children: Vec<Port>,
    value: Option<u64>,
    sent: bool,
}

impl Program for BroadcastProgram {
    type Msg = u64;

    fn round(&mut self, ctx: &mut Ctx<'_, u64>) {
        if self.value.is_none() {
            if let Some(a) = ctx.inbox().first() {
                self.value = Some(a.msg);
            }
        }
        if let Some(v) = self.value {
            if !self.sent {
                self.sent = true;
                for &c in &self.children {
                    ctx.send(c, v);
                }
            }
        }
    }
}

/// Computes `op` over all per-node `values` and makes the result known to
/// every node, via convergecast + broadcast over `tree`.
///
/// Returns the aggregate and the combined metrics of both phases
/// (`O(D)` rounds in total).
///
/// # Panics
///
/// Panics if `values.len() != topo.len()`.
pub fn global_aggregate(topo: &Topology, tree: &BfsTree, values: &[u64], op: Op) -> (u64, Metrics) {
    assert_eq!(values.len(), topo.len(), "one value per node");

    // Phase 1: convergecast.
    let programs: Vec<ConvergeProgram> = topo
        .nodes()
        .map(|v| ConvergeProgram {
            parent_port: tree.parent_port[v.index()],
            pending_children: tree.children[v.index()].len(),
            acc: values[v.index()],
            op,
            sent: false,
            done_value: None,
        })
        .collect();
    let mut rt = Runtime::new(topo, programs, Config::default());
    let report = rt.run();
    assert!(report.quiescent, "convergecast did not quiesce");
    let (programs, mut metrics) = rt.into_parts();
    let result = programs[tree.root.index()]
        .done_value
        .expect("root must have aggregated all children");

    // Phase 2: broadcast down.
    let programs: Vec<BroadcastProgram> = topo
        .nodes()
        .map(|v| BroadcastProgram {
            children: tree.children[v.index()].clone(),
            value: (v == tree.root).then_some(result),
            sent: false,
        })
        .collect();
    let mut rt = Runtime::new(topo, programs, Config::default());
    let report = rt.run();
    assert!(report.quiescent, "broadcast did not quiesce");
    let (programs, bmetrics) = rt.into_parts();
    debug_assert!(programs.iter().all(|p| p.value == Some(result)));
    metrics.absorb(&bmetrics);
    (result, metrics)
}

/// Convenience: the global maximum of `values`, known to all nodes.
pub fn global_max(topo: &Topology, tree: &BfsTree, values: &[u64]) -> (u64, Metrics) {
    global_aggregate(topo, tree, values, Op::Max)
}

/// Convenience: the global sum of `values`, known to all nodes.
pub fn global_sum(topo: &Topology, tree: &BfsTree, values: &[u64]) -> (u64, Metrics) {
    global_aggregate(topo, tree, values, Op::Sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::build_bfs;
    use crate::model::NodeId;

    fn setup() -> (Topology, BfsTree) {
        let topo =
            Topology::from_edges(6, &[(0, 1, 1), (0, 2, 1), (1, 3, 1), (2, 4, 1), (2, 5, 1)])
                .unwrap();
        let (tree, _) = build_bfs(&topo, NodeId(0));
        (topo, tree)
    }

    #[test]
    fn max_of_values() {
        let (topo, tree) = setup();
        let (v, metrics) = global_max(&topo, &tree, &[3, 1, 4, 1, 5, 9]);
        assert_eq!(v, 9);
        // Two O(height) phases.
        assert!(metrics.rounds <= 2 * (tree.height + 2));
    }

    #[test]
    fn sum_of_values() {
        let (topo, tree) = setup();
        let (v, _) = global_sum(&topo, &tree, &[1, 1, 1, 1, 1, 1]);
        assert_eq!(v, 6);
    }

    #[test]
    fn min_of_values() {
        let (topo, tree) = setup();
        let (v, _) = global_aggregate(&topo, &tree, &[3, 7, 4, 2, 5, 9], Op::Min);
        assert_eq!(v, 2);
    }

    #[test]
    fn sum_saturates() {
        let (topo, tree) = setup();
        let (v, _) = global_sum(&topo, &tree, &[u64::MAX, 1, 0, 0, 0, 0]);
        assert_eq!(v, u64::MAX);
    }

    #[test]
    fn single_node_aggregate() {
        let topo = Topology::from_edges(2, &[(0, 1, 1)]).unwrap();
        let (tree, _) = build_bfs(&topo, NodeId(1));
        let (v, _) = global_max(&topo, &tree, &[10, 20]);
        assert_eq!(v, 20);
    }
}
