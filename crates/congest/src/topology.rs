//! Immutable network topology: CSR adjacency with weights and delays.

use crate::model::{NodeId, Port};
use std::fmt;

/// Errors produced while validating a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// An edge endpoint referred to a node index `>= n`.
    NodeOutOfRange {
        /// The offending endpoint.
        node: u32,
        /// Number of nodes in the topology.
        n: usize,
    },
    /// An edge connected a node to itself.
    SelfLoop(u32),
    /// The same undirected pair appeared twice.
    DuplicateEdge(u32, u32),
    /// An edge had weight zero (the paper assumes `W: E → ℕ`, i.e. `≥ 1`).
    ZeroWeight(u32, u32),
    /// The topology had zero nodes.
    Empty,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::NodeOutOfRange { node, n } => {
                write!(f, "edge endpoint {node} out of range for {n} nodes")
            }
            TopologyError::SelfLoop(v) => write!(f, "self loop at node {v}"),
            TopologyError::DuplicateEdge(u, v) => write!(f, "duplicate edge {{{u}, {v}}}"),
            TopologyError::ZeroWeight(u, v) => write!(f, "edge {{{u}, {v}}} has weight zero"),
            TopologyError::Empty => write!(f, "topology must have at least one node"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// An immutable, simple, weighted, undirected network topology.
///
/// Stored as a CSR structure over *arcs* (directed edge copies). Each arc
/// carries a weight (same in both directions) and a *delay* in rounds
/// (default 1). Delays model the subdivided graphs `G_i` from Section 3 of
/// the paper: a message sent over an arc with delay `L` is delivered `L`
/// rounds later, exactly as if it were relayed along a path of `L` virtual
/// unit-weight edges at one hop per round.
///
/// Arc lists are sorted by neighbor id, so port numbering is deterministic.
#[derive(Clone, Debug)]
pub struct Topology {
    n: usize,
    offsets: Vec<u32>,
    targets: Vec<NodeId>,
    weights: Vec<u64>,
    delays: Vec<u64>,
    /// For global arc index `a = (u → v)`, `rev[a]` is the global arc index
    /// of `(v → u)`. Used to translate a sender's port into the receiver's.
    rev: Vec<u32>,
}

impl Topology {
    /// Builds a topology from an undirected edge list `(u, v, weight)`.
    ///
    /// All delays are initialized to 1 (the plain CONGEST model).
    ///
    /// # Errors
    ///
    /// Returns a [`TopologyError`] if the edge list contains self loops,
    /// duplicate pairs, zero weights or out-of-range endpoints, or if
    /// `n == 0`.
    pub fn from_edges(n: usize, edges: &[(u32, u32, u64)]) -> Result<Self, TopologyError> {
        if n == 0 {
            return Err(TopologyError::Empty);
        }
        let mut arcs: Vec<(u32, u32, u64)> = Vec::with_capacity(edges.len() * 2);
        for &(u, v, w) in edges {
            if u as usize >= n {
                return Err(TopologyError::NodeOutOfRange { node: u, n });
            }
            if v as usize >= n {
                return Err(TopologyError::NodeOutOfRange { node: v, n });
            }
            if u == v {
                return Err(TopologyError::SelfLoop(u));
            }
            if w == 0 {
                return Err(TopologyError::ZeroWeight(u, v));
            }
            arcs.push((u, v, w));
            arcs.push((v, u, w));
        }
        arcs.sort_unstable();
        for pair in arcs.windows(2) {
            if pair[0].0 == pair[1].0 && pair[0].1 == pair[1].1 {
                return Err(TopologyError::DuplicateEdge(pair[0].0, pair[0].1));
            }
        }

        let mut offsets = vec![0u32; n + 1];
        for &(u, _, _) in &arcs {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let targets: Vec<NodeId> = arcs.iter().map(|&(_, v, _)| NodeId(v)).collect();
        let weights: Vec<u64> = arcs.iter().map(|&(_, _, w)| w).collect();
        let delays = vec![1u64; arcs.len()];

        // rev[a]: binary search for the reverse arc inside the target's slice.
        let mut rev = vec![0u32; arcs.len()];
        for (a, &(u, v, _)) in arcs.iter().enumerate() {
            let lo = offsets[v as usize] as usize;
            let hi = offsets[v as usize + 1] as usize;
            let slice = &targets[lo..hi];
            let pos = slice
                .binary_search(&NodeId(u))
                .expect("reverse arc must exist (edges are symmetric)");
            rev[a] = (lo + pos) as u32;
        }

        Ok(Topology {
            n,
            offsets,
            targets,
            weights,
            delays,
            rev,
        })
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the topology has no nodes (never true for valid topologies).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Degree of node `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    #[inline]
    fn arc(&self, v: NodeId, port: Port) -> usize {
        let a = self.offsets[v.index()] + port;
        debug_assert!(a < self.offsets[v.index() + 1], "port out of range");
        a as usize
    }

    /// Total number of directed arcs (`2 · num_edges`).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// The contiguous range of global arc indices owned by `v`; arc
    /// `arc_range(v).start + p` is `v`'s port `p`. This is the dense
    /// `(node, port)` key space the runtime's delivery buckets use.
    #[inline]
    pub fn arc_range(&self, v: NodeId) -> std::ops::Range<usize> {
        self.offsets[v.index()] as usize..self.offsets[v.index() + 1] as usize
    }

    /// The neighbor reached through `port` of node `v`.
    #[inline]
    pub fn neighbor(&self, v: NodeId, port: Port) -> NodeId {
        self.targets[self.arc(v, port)]
    }

    /// The weight of the edge at `port` of node `v`.
    #[inline]
    pub fn weight(&self, v: NodeId, port: Port) -> u64 {
        self.weights[self.arc(v, port)]
    }

    /// The delay (in rounds) of the arc at `port` of node `v`.
    #[inline]
    pub fn delay(&self, v: NodeId, port: Port) -> u64 {
        self.delays[self.arc(v, port)]
    }

    /// The port on which `v`'s message over `port` arrives at the neighbor.
    #[inline]
    pub fn reverse_port(&self, v: NodeId, port: Port) -> Port {
        let a = self.arc(v, port);
        let t = self.targets[a];
        self.rev[a] - self.offsets[t.index()]
    }

    /// The global arc index of the reverse arc of `v`'s `port` — i.e. the
    /// receiving slot, in the dense `(node, port)` key space of
    /// [`Topology::arc_range`], of a message sent by `v` over `port`.
    #[inline]
    pub fn reverse_arc(&self, v: NodeId, port: Port) -> u32 {
        self.rev[self.arc(v, port)]
    }

    /// The port of node `v` leading to neighbor `u`, if `{v, u}` is an edge.
    pub fn port_to(&self, v: NodeId, u: NodeId) -> Option<Port> {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        self.targets[lo..hi]
            .binary_search(&u)
            .ok()
            .map(|p| p as Port)
    }

    /// Iterates over `(port, neighbor, weight, delay)` for node `v`.
    pub fn arcs(&self, v: NodeId) -> impl Iterator<Item = (Port, NodeId, u64, u64)> + '_ {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        (lo..hi).map(move |a| {
            (
                (a - lo) as Port,
                self.targets[a],
                self.weights[a],
                self.delays[a],
            )
        })
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.n as u32).map(NodeId)
    }

    /// Serializes the topology (node count + canonical undirected edge
    /// list) with the snapshot wire format of [`crate::wire`]. This is
    /// *the* topology codec — every scheme snapshot delegates here so the
    /// framing cannot diverge between crates. Delays are not persisted;
    /// they are a per-simulation derivation of the weights.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn write_into(&self, sink: &mut dyn std::io::Write) -> std::io::Result<()> {
        let mut w = crate::wire::WireWriter::new(sink);
        w.usize(self.len())?;
        let edges = self.undirected_edges();
        w.len(edges.len())?;
        for (a, b, wt) in edges {
            w.u32(a)?;
            w.u32(b)?;
            w.u64(wt)?;
        }
        Ok(())
    }

    /// Deserializes a topology written by [`Topology::write_into`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed bytes or an invalid edge list.
    pub fn read_from(source: &mut dyn std::io::Read) -> std::io::Result<Topology> {
        let mut r = crate::wire::WireReader::new(source);
        let n = r.usize()?;
        if n > crate::wire::MAX_SNAPSHOT_NODES {
            return Err(crate::wire::invalid_data(format!(
                "topology snapshot claims {n} nodes"
            )));
        }
        let m = r.len(n.saturating_mul(n))?;
        let mut edges = Vec::with_capacity(crate::wire::clamped_capacity(m));
        for _ in 0..m {
            let a = r.u32()?;
            let b = r.u32()?;
            let wt = r.u64()?;
            edges.push((a, b, wt));
        }
        Topology::from_edges(n, &edges)
            .map_err(|e| crate::wire::invalid_data(format!("bad topology: {e}")))
    }

    /// Emits the topology into a v3 arena: a `[n]` meta section plus the
    /// canonical undirected edge list split SoA (endpoints, weights).
    pub fn write_arena(&self, a: &mut crate::arena::ArenaWriter) {
        a.u64s(&[self.len() as u64]);
        let edges = self.undirected_edges();
        let endpoints: Vec<u32> = edges.iter().flat_map(|&(a, b, _)| [a, b]).collect();
        let weights: Vec<u64> = edges.iter().map(|&(_, _, w)| w).collect();
        a.u32s(&endpoints);
        a.u64s(&weights);
    }

    /// Reads what [`Topology::write_arena`] wrote, re-validating through
    /// [`Topology::from_edges`] (edge lists are small next to the route
    /// tables keyed on them; the CSR rebuild is not on the cold-start
    /// critical path).
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed sections or an invalid edge
    /// list.
    pub fn read_arena(c: &mut crate::arena::ArenaCursor<'_>) -> std::io::Result<Topology> {
        let meta = c.u64s()?;
        let [n] = meta[..] else {
            return Err(crate::wire::invalid_data("topology meta section misshapen"));
        };
        let n = usize::try_from(n).map_err(|_| crate::wire::invalid_data("topology n overflow"))?;
        if n > crate::wire::MAX_SNAPSHOT_NODES {
            return Err(crate::wire::invalid_data(format!(
                "topology snapshot claims {n} nodes"
            )));
        }
        let endpoints = c.u32s()?;
        let weights = c.u64s()?;
        if endpoints.len() != weights.len() * 2 {
            return Err(crate::wire::invalid_data(
                "topology SoA sections disagree on length",
            ));
        }
        let edges: Vec<(u32, u32, u64)> = endpoints
            .chunks_exact(2)
            .zip(&weights)
            .map(|(ab, &w)| (ab[0], ab[1], w))
            .collect();
        Topology::from_edges(n, &edges)
            .map_err(|e| crate::wire::invalid_data(format!("bad topology: {e}")))
    }

    /// The undirected edge list `(min_endpoint, max_endpoint, weight)`,
    /// sorted — the canonical form snapshots persist, from which
    /// [`Topology::from_edges`] rebuilds an identical topology (delays are
    /// not included; they are a per-simulation derivation of the weights).
    pub fn undirected_edges(&self) -> Vec<(u32, u32, u64)> {
        let mut edges = Vec::with_capacity(self.num_edges());
        for v in self.nodes() {
            for (_, u, w, _) in self.arcs(v) {
                if v < u {
                    edges.push((v.0, u.0, w));
                }
            }
        }
        edges
    }

    /// Largest edge weight.
    pub fn max_weight(&self) -> u64 {
        self.weights.iter().copied().max().unwrap_or(0)
    }

    /// Largest arc delay.
    pub fn max_delay(&self) -> u64 {
        self.delays.iter().copied().max().unwrap_or(1)
    }

    /// Returns a copy of this topology whose arc delays are `f(weight)`,
    /// clamped below at 1.
    ///
    /// This is how the per-level subdivided graphs `G_i` of the paper are
    /// produced: `f(w) = ⌈w / b(i)⌉` makes crossing an edge of weight `w`
    /// take exactly as many rounds as relaying along its subdivision into
    /// `⌈w / b(i)⌉` unit edges.
    pub fn with_delays<F: Fn(u64) -> u64>(&self, f: F) -> Topology {
        let mut t = self.clone();
        for (d, &w) in t.delays.iter_mut().zip(self.weights.iter()) {
            *d = f(w).max(1);
        }
        t
    }

    /// Returns a copy with all delays reset to 1 (plain CONGEST).
    pub fn with_unit_delays(&self) -> Topology {
        self.with_delays(|_| 1)
    }

    /// `true` if the topology is connected (checked by BFS; `O(n + m)`).
    pub fn is_connected(&self) -> bool {
        let mut seen = vec![false; self.n];
        let mut queue = std::collections::VecDeque::new();
        seen[0] = true;
        queue.push_back(NodeId(0));
        let mut count = 1;
        while let Some(v) = queue.pop_front() {
            for (_, u, _, _) in self.arcs(v) {
                if !seen[u.index()] {
                    seen[u.index()] = true;
                    count += 1;
                    queue.push_back(u);
                }
            }
        }
        count == self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Topology {
        Topology::from_edges(3, &[(0, 1, 5), (1, 2, 7), (0, 2, 9)]).unwrap()
    }

    #[test]
    fn basic_structure() {
        let t = triangle();
        assert_eq!(t.len(), 3);
        assert_eq!(t.num_edges(), 3);
        assert_eq!(t.degree(NodeId(0)), 2);
        assert_eq!(t.neighbor(NodeId(0), 0), NodeId(1));
        assert_eq!(t.neighbor(NodeId(0), 1), NodeId(2));
        assert_eq!(t.weight(NodeId(0), 0), 5);
        assert_eq!(t.weight(NodeId(0), 1), 9);
        assert!(t.is_connected());
    }

    #[test]
    fn reverse_ports_are_consistent() {
        let t = triangle();
        for v in t.nodes() {
            for (port, u, w, _) in t.arcs(v) {
                let rp = t.reverse_port(v, port);
                assert_eq!(t.neighbor(u, rp), v);
                assert_eq!(t.weight(u, rp), w);
            }
        }
    }

    #[test]
    fn port_to_finds_neighbors() {
        let t = triangle();
        assert_eq!(t.port_to(NodeId(0), NodeId(2)), Some(1));
        let t2 = Topology::from_edges(4, &[(0, 1, 1), (2, 3, 1), (1, 2, 1)]).unwrap();
        assert_eq!(t2.port_to(NodeId(0), NodeId(3)), None);
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(matches!(
            Topology::from_edges(2, &[(0, 0, 1)]),
            Err(TopologyError::SelfLoop(0))
        ));
        assert!(matches!(
            Topology::from_edges(2, &[(0, 1, 1), (1, 0, 2)]),
            Err(TopologyError::DuplicateEdge(_, _))
        ));
        assert!(matches!(
            Topology::from_edges(2, &[(0, 1, 0)]),
            Err(TopologyError::ZeroWeight(0, 1))
        ));
        assert!(matches!(
            Topology::from_edges(2, &[(0, 5, 1)]),
            Err(TopologyError::NodeOutOfRange { node: 5, n: 2 })
        ));
        assert!(matches!(
            Topology::from_edges(0, &[]),
            Err(TopologyError::Empty)
        ));
    }

    #[test]
    fn delays_follow_weights() {
        let t = triangle().with_delays(|w| w.div_ceil(4));
        assert_eq!(t.delay(NodeId(0), 0), 2); // ceil(5/4)
        assert_eq!(t.delay(NodeId(1), 1), 2); // ceil(7/4)
        assert_eq!(t.delay(NodeId(0), 1), 3); // ceil(9/4)
        let u = t.with_unit_delays();
        assert_eq!(u.max_delay(), 1);
    }

    #[test]
    fn disconnected_graph_detected() {
        let t = Topology::from_edges(4, &[(0, 1, 1), (2, 3, 1)]).unwrap();
        assert!(!t.is_connected());
    }
}
