//! The synchronous round scheduler.
//!
//! # Hot-path design
//!
//! The round loop is allocation-free in steady state. Messages in flight
//! live in a ring of per-round buckets; the bucket for the current round is
//! swapped into a reusable scratch vector and scattered into a dense
//! per-arc slot table (`(node, port)` pairs are exactly the global arc
//! indices of the CSR topology, and per-arc delays plus the
//! one-message-per-port CONGEST rule guarantee at most one delivery per arc
//! per round). Each node's inbox is then gathered from its contiguous arc
//! range — which yields port-sorted order for free — into a single reused
//! buffer, and programs write sends into a reused outbox. No per-round
//! `Vec<Vec<_>>` inboxes, no global `sort_by_key`, no per-node allocations.

use crate::metrics::Metrics;
use crate::model::{Message, NodeId, Port};
use crate::program::{Arrival, Ctx, Program};
use crate::topology::Topology;

/// Runtime configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Hard upper bound on executed rounds. The theorems under test give
    /// explicit round budgets; callers that validate a bound set it here
    /// and check [`RunReport::quiescent`].
    pub max_rounds: u64,
    /// Bandwidth `B` in bits. Messages larger than this are counted in
    /// [`Metrics::bandwidth_violations`] (and panic if `strict_bandwidth`).
    pub bandwidth_bits: usize,
    /// Panic on over-size messages instead of just counting them.
    pub strict_bandwidth: bool,
    /// Stop as soon as the network is quiescent (no messages in flight,
    /// nothing sent last round, all programs idle).
    pub stop_when_quiet: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_rounds: 1_000_000,
            bandwidth_bits: 256,
            strict_bandwidth: false,
            stop_when_quiet: true,
        }
    }
}

impl Config {
    /// A config with a fixed round budget and quiescence stopping disabled:
    /// exactly `rounds` rounds are counted and charged. Quiet trailing
    /// rounds still elapse (and are metered), though idle nodes with empty
    /// inboxes are not individually stepped — see [`Program::is_idle`].
    pub fn exact_rounds(rounds: u64) -> Self {
        Config {
            max_rounds: rounds,
            stop_when_quiet: false,
            ..Default::default()
        }
    }

    /// A config bounded by `rounds` that stops early on quiescence.
    pub fn up_to_rounds(rounds: u64) -> Self {
        Config {
            max_rounds: rounds,
            stop_when_quiet: true,
            ..Default::default()
        }
    }
}

/// Result summary of a run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Rounds executed.
    pub rounds: u64,
    /// `true` if the run ended because the network went quiet (rather than
    /// exhausting `max_rounds`).
    pub quiescent: bool,
}

struct Delivery<M> {
    /// Destination node.
    node: NodeId,
    /// Global index of the *receiving* arc (precomputed at send time, so
    /// delivery needs no per-message offset lookup).
    arc: u32,
    msg: M,
}

/// Executes a [`Program`] instance per node over a [`Topology`].
///
/// Delivery semantics: a message sent in round `r` over an arc with delay
/// `d` is delivered at the start of round `r + d`. Per-node inboxes are
/// sorted by arrival port, so execution is fully deterministic.
pub struct Runtime<'t, P: Program> {
    topo: &'t Topology,
    programs: Vec<P>,
    cfg: Config,
    metrics: Metrics,
    /// Ring buffer of future deliveries, indexed by round modulo capacity.
    buckets: Vec<Vec<Delivery<P::Msg>>>,
    in_flight: u64,
    round: u64,
    // ---- reused hot-path scratch ----
    /// The current round's deliveries (swapped out of the ring bucket so
    /// both vectors keep their capacity).
    current: Vec<Delivery<P::Msg>>,
    /// One slot per directed arc; `Some` iff a message arrives on that arc
    /// this round (drained back to `None` as inboxes are gathered).
    arc_slots: Vec<Option<P::Msg>>,
    /// Per-node arrival counts for this round (reset inline while
    /// gathering, so cleanup is O(deliveries), not O(n)).
    arrival_count: Vec<u32>,
    /// The inbox buffer handed to the current node's [`Ctx`].
    inbox: Vec<Arrival<P::Msg>>,
    /// The outbox buffer handed to the current node's [`Ctx`].
    sends: Vec<(Port, P::Msg)>,
    /// Per-port send flags, sized to the maximum degree; entries set by a
    /// node's sends are cleared while the outbox is drained.
    port_used: Vec<bool>,
}

impl<'t, P: Program> Runtime<'t, P> {
    /// Creates a runtime for `topo` with one program per node.
    ///
    /// # Panics
    ///
    /// Panics if `programs.len() != topo.len()`.
    pub fn new(topo: &'t Topology, programs: Vec<P>, cfg: Config) -> Self {
        assert_eq!(
            programs.len(),
            topo.len(),
            "one program per node is required"
        );
        let cap = (topo.max_delay() + 1) as usize;
        let mut buckets = Vec::with_capacity(cap);
        buckets.resize_with(cap, Vec::new);
        let max_degree = topo.nodes().map(|v| topo.degree(v)).max().unwrap_or(0);
        let mut arc_slots = Vec::new();
        arc_slots.resize_with(topo.num_arcs(), || None);
        Runtime {
            topo,
            programs,
            cfg,
            metrics: Metrics::new(topo.len()),
            buckets,
            in_flight: 0,
            round: 0,
            current: Vec::new(),
            arc_slots,
            arrival_count: vec![0; topo.len()],
            inbox: Vec::new(),
            sends: Vec::new(),
            port_used: vec![false; max_degree],
        }
    }

    /// Runs rounds until quiescence or the round budget is exhausted.
    pub fn run(&mut self) -> RunReport {
        let n = self.topo.len();
        let mut quiescent = false;
        while self.round < self.cfg.max_rounds {
            // Deliver this round's messages: scatter into per-arc slots.
            // At most one message per arc per round (delays are fixed per
            // arc and senders use each port at most once per round), so
            // the slot table doubles as a counting sort keyed on
            // (node, port) with no comparison sort anywhere.
            let slot = (self.round as usize) % self.buckets.len();
            std::mem::swap(&mut self.current, &mut self.buckets[slot]);
            self.in_flight -= self.current.len() as u64;
            for d in self.current.drain(..) {
                let a = d.arc as usize;
                debug_assert!(self.arc_slots[a].is_none(), "two deliveries on one arc");
                self.arc_slots[a] = Some(d.msg);
                self.arrival_count[d.node.index()] += 1;
            }

            // Execute programs and collect sends.
            let mut sent_this_round = 0u64;
            for v in 0..n {
                let node = NodeId::from_index(v);
                // Gather the inbox from the node's contiguous arc range;
                // ascending arc index is ascending port.
                self.inbox.clear();
                if self.arrival_count[v] > 0 {
                    let expected = std::mem::take(&mut self.arrival_count[v]) as usize;
                    let range = self.topo.arc_range(node);
                    let base = range.start;
                    for a in range {
                        if let Some(msg) = self.arc_slots[a].take() {
                            self.inbox.push(Arrival {
                                port: (a - base) as Port,
                                msg,
                            });
                            if self.inbox.len() == expected {
                                break;
                            }
                        }
                    }
                } else if self.round > 0 && self.programs[v].is_idle() {
                    // Contract of `is_idle`: an idle node sends nothing
                    // until it receives something, and its `round` with an
                    // empty inbox is a no-op — so don't pay for the call.
                    // Round 0 always executes (input placement).
                    continue;
                }
                let degree = self.topo.degree(node);
                let mut ctx = Ctx::new(
                    node,
                    self.round,
                    self.topo,
                    &self.inbox,
                    &mut self.sends,
                    &mut self.port_used[..degree],
                );
                self.programs[v].round(&mut ctx);
                sent_this_round += self.sends.len() as u64;
                self.metrics.per_node_sent[v] += self.sends.len() as u64;
                for (port, msg) in self.sends.drain(..) {
                    // Every send marked exactly one flag; clearing here
                    // keeps the reset O(sends) instead of O(degree).
                    self.port_used[port as usize] = false;
                    let bits = msg.bit_size();
                    self.metrics.max_message_bits = self.metrics.max_message_bits.max(bits);
                    self.metrics.total_bits += bits as u64;
                    if bits > self.cfg.bandwidth_bits {
                        self.metrics.bandwidth_violations += 1;
                        assert!(
                            !self.cfg.strict_bandwidth,
                            "message of {bits} bits exceeds bandwidth B={} (node {node}, round {})",
                            self.cfg.bandwidth_bits, self.round
                        );
                    }
                    let delay = self.topo.delay(node, port);
                    let arrival = self.round + delay;
                    // Deliveries beyond the budget can never be observed;
                    // dropping them keeps the ring buffer small. The send
                    // itself is still counted (bandwidth was consumed).
                    if arrival < self.cfg.max_rounds {
                        let target = self.topo.neighbor(node, port);
                        let rarc = self.topo.reverse_arc(node, port);
                        let slot = (arrival as usize) % self.buckets.len();
                        self.buckets[slot].push(Delivery {
                            node: target,
                            arc: rarc,
                            msg,
                        });
                        self.in_flight += 1;
                    }
                }
            }
            self.metrics.messages += sent_this_round;
            self.metrics.per_round_sent.push(sent_this_round);
            self.round += 1;

            if self.cfg.stop_when_quiet
                && sent_this_round == 0
                && self.in_flight == 0
                && self.programs.iter().all(|p| p.is_idle())
            {
                quiescent = true;
                break;
            }
        }
        self.metrics.rounds = self.round;
        RunReport {
            rounds: self.round,
            quiescent,
        }
    }

    /// Consumes the runtime, returning the final program states and metrics.
    pub fn into_parts(self) -> (Vec<P>, Metrics) {
        (self.programs, self.metrics)
    }

    /// Borrow the metrics gathered so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Borrow the program states.
    pub fn programs(&self) -> &[P] {
        &self.programs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes every received value +1 back on the same port, starting from
    /// one initiator; used to test delivery timing.
    struct PingPong {
        start: bool,
        log: Vec<(u64, u64)>,
        limit: u64,
    }

    impl Program for PingPong {
        type Msg = u64;
        fn round(&mut self, ctx: &mut Ctx<'_, u64>) {
            if self.start && ctx.round() == 0 {
                ctx.send(0, 0);
            }
            for a in ctx.inbox() {
                self.log.push((ctx.round(), a.msg));
                if a.msg < self.limit {
                    ctx.send(a.port, a.msg + 1);
                }
            }
        }
    }

    #[test]
    fn unit_delay_round_trip() {
        let topo = Topology::from_edges(2, &[(0, 1, 1)]).unwrap();
        let programs = vec![
            PingPong {
                start: true,
                log: vec![],
                limit: 4,
            },
            PingPong {
                start: false,
                log: vec![],
                limit: 4,
            },
        ];
        let mut rt = Runtime::new(&topo, programs, Config::default());
        let report = rt.run();
        assert!(report.quiescent);
        let (programs, metrics) = rt.into_parts();
        // Value v arrives at round v+1 (sent at round v with delay 1).
        assert_eq!(programs[1].log, vec![(1, 0), (3, 2), (5, 4)]);
        assert_eq!(programs[0].log, vec![(2, 1), (4, 3)]);
        assert_eq!(metrics.messages, 5); // values 0..=4
        assert_eq!(metrics.per_node_sent, vec![3, 2]);
    }

    #[test]
    fn delayed_arc_delivers_late() {
        let topo = Topology::from_edges(2, &[(0, 1, 10)])
            .unwrap()
            .with_delays(|w| w / 2);
        assert_eq!(topo.delay(NodeId(0), 0), 5);
        let programs = vec![
            PingPong {
                start: true,
                log: vec![],
                limit: 0,
            },
            PingPong {
                start: false,
                log: vec![],
                limit: 0,
            },
        ];
        let mut rt = Runtime::new(&topo, programs, Config::default());
        rt.run();
        let (programs, _) = rt.into_parts();
        assert_eq!(programs[1].log, vec![(5, 0)]);
    }

    #[test]
    fn max_rounds_is_respected() {
        let topo = Topology::from_edges(2, &[(0, 1, 1)]).unwrap();
        let programs = vec![
            PingPong {
                start: true,
                log: vec![],
                limit: u64::MAX,
            },
            PingPong {
                start: false,
                log: vec![],
                limit: u64::MAX,
            },
        ];
        let mut rt = Runtime::new(&topo, programs, Config::up_to_rounds(10));
        let report = rt.run();
        assert!(!report.quiescent);
        assert_eq!(report.rounds, 10);
    }

    #[test]
    fn metrics_record_bits() {
        let topo = Topology::from_edges(2, &[(0, 1, 1)]).unwrap();
        let programs = vec![
            PingPong {
                start: true,
                log: vec![],
                limit: 0,
            },
            PingPong {
                start: false,
                log: vec![],
                limit: 0,
            },
        ];
        let mut rt = Runtime::new(&topo, programs, Config::default());
        rt.run();
        assert_eq!(rt.metrics().max_message_bits, 64);
        assert_eq!(rt.metrics().total_bits, 64);
        assert_eq!(rt.metrics().bandwidth_violations, 0);
    }

    /// Broadcasts a fresh value every round on every port; stresses the
    /// arc-slot scatter/gather with saturated inboxes and mixed delays.
    struct Chatter {
        rounds_left: u64,
        heard: Vec<(u64, Port, u64)>,
    }

    impl Program for Chatter {
        type Msg = u64;
        fn round(&mut self, ctx: &mut Ctx<'_, u64>) {
            for a in ctx.inbox() {
                self.heard.push((ctx.round(), a.port, a.msg));
            }
            if self.rounds_left > 0 {
                self.rounds_left -= 1;
                ctx.broadcast(1000 * u64::from(ctx.node().0) + ctx.round());
            }
        }
        fn is_idle(&self) -> bool {
            self.rounds_left == 0
        }
    }

    #[test]
    fn saturated_inboxes_stay_port_sorted() {
        // Triangle with heterogeneous delays: every node receives on every
        // port most rounds; inboxes must come out sorted by port.
        let topo = Topology::from_edges(3, &[(0, 1, 1), (1, 2, 2), (0, 2, 3)])
            .unwrap()
            .with_delays(|w| w);
        let programs: Vec<Chatter> = (0..3)
            .map(|_| Chatter {
                rounds_left: 5,
                heard: vec![],
            })
            .collect();
        let mut rt = Runtime::new(&topo, programs, Config::default());
        let report = rt.run();
        assert!(report.quiescent);
        let (programs, metrics) = rt.into_parts();
        // 3 nodes * 5 rounds * degree 2 sends.
        assert_eq!(metrics.messages, 30);
        let mut received = 0;
        for p in &programs {
            received += p.heard.len();
            for w in p.heard.windows(2) {
                let ((r1, p1, _), (r2, p2, _)) = (w[0], w[1]);
                assert!(r1 < r2 || (r1 == r2 && p1 < p2), "inbox not port-sorted");
            }
        }
        // Every sent message is delivered exactly once.
        assert_eq!(received, 30);
    }
}
