//! The synchronous round scheduler.

use crate::metrics::Metrics;
use crate::model::{Message, NodeId, Port};
use crate::program::{Arrival, Ctx, Program};
use crate::topology::Topology;

/// Runtime configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Hard upper bound on executed rounds. The theorems under test give
    /// explicit round budgets; callers that validate a bound set it here
    /// and check [`RunReport::quiescent`].
    pub max_rounds: u64,
    /// Bandwidth `B` in bits. Messages larger than this are counted in
    /// [`Metrics::bandwidth_violations`] (and panic if `strict_bandwidth`).
    pub bandwidth_bits: usize,
    /// Panic on over-size messages instead of just counting them.
    pub strict_bandwidth: bool,
    /// Stop as soon as the network is quiescent (no messages in flight,
    /// nothing sent last round, all programs idle).
    pub stop_when_quiet: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_rounds: 1_000_000,
            bandwidth_bits: 256,
            strict_bandwidth: false,
            stop_when_quiet: true,
        }
    }
}

impl Config {
    /// A config with a fixed round budget and quiescence stopping disabled:
    /// runs *exactly* `rounds` rounds (unless quiescence would make the
    /// remainder a no-op, which is still executed for fidelity).
    pub fn exact_rounds(rounds: u64) -> Self {
        Config {
            max_rounds: rounds,
            stop_when_quiet: false,
            ..Default::default()
        }
    }

    /// A config bounded by `rounds` that stops early on quiescence.
    pub fn up_to_rounds(rounds: u64) -> Self {
        Config {
            max_rounds: rounds,
            stop_when_quiet: true,
            ..Default::default()
        }
    }
}

/// Result summary of a run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Rounds executed.
    pub rounds: u64,
    /// `true` if the run ended because the network went quiet (rather than
    /// exhausting `max_rounds`).
    pub quiescent: bool,
}

struct Delivery<M> {
    node: NodeId,
    port: Port,
    msg: M,
}

/// Executes a [`Program`] instance per node over a [`Topology`].
///
/// Delivery semantics: a message sent in round `r` over an arc with delay
/// `d` is delivered at the start of round `r + d`. Per-node inboxes are
/// sorted by arrival port, so execution is fully deterministic.
pub struct Runtime<'t, P: Program> {
    topo: &'t Topology,
    programs: Vec<P>,
    cfg: Config,
    metrics: Metrics,
    /// Ring buffer of future deliveries, indexed by round modulo capacity.
    buckets: Vec<Vec<Delivery<P::Msg>>>,
    in_flight: u64,
    round: u64,
}

impl<'t, P: Program> Runtime<'t, P> {
    /// Creates a runtime for `topo` with one program per node.
    ///
    /// # Panics
    ///
    /// Panics if `programs.len() != topo.len()`.
    pub fn new(topo: &'t Topology, programs: Vec<P>, cfg: Config) -> Self {
        assert_eq!(
            programs.len(),
            topo.len(),
            "one program per node is required"
        );
        let cap = (topo.max_delay() + 1) as usize;
        let mut buckets = Vec::with_capacity(cap);
        buckets.resize_with(cap, Vec::new);
        Runtime {
            topo,
            programs,
            cfg,
            metrics: Metrics::new(topo.len()),
            buckets,
            in_flight: 0,
            round: 0,
        }
    }

    /// Runs rounds until quiescence or the round budget is exhausted.
    pub fn run(&mut self) -> RunReport {
        let n = self.topo.len();
        let mut quiescent = false;
        while self.round < self.cfg.max_rounds {
            // Deliver this round's messages.
            let slot = (self.round as usize) % self.buckets.len();
            let mut deliveries = std::mem::take(&mut self.buckets[slot]);
            self.in_flight -= deliveries.len() as u64;
            deliveries.sort_by_key(|d| (d.node, d.port));
            let mut inboxes: Vec<Vec<Arrival<P::Msg>>> = vec![Vec::new(); n];
            for d in deliveries {
                inboxes[d.node.index()].push(Arrival {
                    port: d.port,
                    msg: d.msg,
                });
            }

            // Execute programs and collect sends.
            let mut sent_this_round = 0u64;
            #[allow(clippy::needless_range_loop)] // v indexes programs and inboxes
            for v in 0..n {
                let node = NodeId::from_index(v);
                let mut ctx = Ctx::new(node, self.round, self.topo, &inboxes[v]);
                self.programs[v].round(&mut ctx);
                let sends = ctx.out.sends;
                sent_this_round += sends.len() as u64;
                for (port, msg) in sends {
                    let bits = msg.bit_size();
                    self.metrics.max_message_bits = self.metrics.max_message_bits.max(bits);
                    self.metrics.total_bits += bits as u64;
                    if bits > self.cfg.bandwidth_bits {
                        self.metrics.bandwidth_violations += 1;
                        assert!(
                            !self.cfg.strict_bandwidth,
                            "message of {bits} bits exceeds bandwidth B={} (node {node}, round {})",
                            self.cfg.bandwidth_bits, self.round
                        );
                    }
                    self.metrics.per_node_sent[v] += 1;
                    let delay = self.topo.delay(node, port);
                    let arrival = self.round + delay;
                    // Deliveries beyond the budget can never be observed;
                    // dropping them keeps the ring buffer small. The send
                    // itself is still counted (bandwidth was consumed).
                    if arrival < self.cfg.max_rounds {
                        let target = self.topo.neighbor(node, port);
                        let rport = self.topo.reverse_port(node, port);
                        let slot = (arrival as usize) % self.buckets.len();
                        self.buckets[slot].push(Delivery {
                            node: target,
                            port: rport,
                            msg,
                        });
                        self.in_flight += 1;
                    }
                }
            }
            self.metrics.messages += sent_this_round;
            self.metrics.per_round_sent.push(sent_this_round);
            self.round += 1;

            if self.cfg.stop_when_quiet
                && sent_this_round == 0
                && self.in_flight == 0
                && self.programs.iter().all(|p| p.is_idle())
            {
                quiescent = true;
                break;
            }
        }
        self.metrics.rounds = self.round;
        RunReport {
            rounds: self.round,
            quiescent,
        }
    }

    /// Consumes the runtime, returning the final program states and metrics.
    pub fn into_parts(self) -> (Vec<P>, Metrics) {
        (self.programs, self.metrics)
    }

    /// Borrow the metrics gathered so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Borrow the program states.
    pub fn programs(&self) -> &[P] {
        &self.programs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes every received value +1 back on the same port, starting from
    /// one initiator; used to test delivery timing.
    struct PingPong {
        start: bool,
        log: Vec<(u64, u64)>,
        limit: u64,
    }

    impl Program for PingPong {
        type Msg = u64;
        fn round(&mut self, ctx: &mut Ctx<'_, u64>) {
            if self.start && ctx.round() == 0 {
                ctx.send(0, 0);
            }
            let arrivals: Vec<(Port, u64)> = ctx.inbox().iter().map(|a| (a.port, a.msg)).collect();
            for (port, val) in arrivals {
                self.log.push((ctx.round(), val));
                if val < self.limit {
                    ctx.send(port, val + 1);
                }
            }
        }
    }

    #[test]
    fn unit_delay_round_trip() {
        let topo = Topology::from_edges(2, &[(0, 1, 1)]).unwrap();
        let programs = vec![
            PingPong {
                start: true,
                log: vec![],
                limit: 4,
            },
            PingPong {
                start: false,
                log: vec![],
                limit: 4,
            },
        ];
        let mut rt = Runtime::new(&topo, programs, Config::default());
        let report = rt.run();
        assert!(report.quiescent);
        let (programs, metrics) = rt.into_parts();
        // Value v arrives at round v+1 (sent at round v with delay 1).
        assert_eq!(programs[1].log, vec![(1, 0), (3, 2), (5, 4)]);
        assert_eq!(programs[0].log, vec![(2, 1), (4, 3)]);
        assert_eq!(metrics.messages, 5); // values 0..=4
        assert_eq!(metrics.per_node_sent, vec![3, 2]);
    }

    #[test]
    fn delayed_arc_delivers_late() {
        let topo = Topology::from_edges(2, &[(0, 1, 10)])
            .unwrap()
            .with_delays(|w| w / 2);
        assert_eq!(topo.delay(NodeId(0), 0), 5);
        let programs = vec![
            PingPong {
                start: true,
                log: vec![],
                limit: 0,
            },
            PingPong {
                start: false,
                log: vec![],
                limit: 0,
            },
        ];
        let mut rt = Runtime::new(&topo, programs, Config::default());
        rt.run();
        let (programs, _) = rt.into_parts();
        assert_eq!(programs[1].log, vec![(5, 0)]);
    }

    #[test]
    fn max_rounds_is_respected() {
        let topo = Topology::from_edges(2, &[(0, 1, 1)]).unwrap();
        let programs = vec![
            PingPong {
                start: true,
                log: vec![],
                limit: u64::MAX,
            },
            PingPong {
                start: false,
                log: vec![],
                limit: u64::MAX,
            },
        ];
        let mut rt = Runtime::new(&topo, programs, Config::up_to_rounds(10));
        let report = rt.run();
        assert!(!report.quiescent);
        assert_eq!(report.rounds, 10);
    }

    #[test]
    fn metrics_record_bits() {
        let topo = Topology::from_edges(2, &[(0, 1, 1)]).unwrap();
        let programs = vec![
            PingPong {
                start: true,
                log: vec![],
                limit: 0,
            },
            PingPong {
                start: false,
                log: vec![],
                limit: 0,
            },
        ];
        let mut rt = Runtime::new(&topo, programs, Config::default());
        rt.run();
        assert_eq!(rt.metrics().max_message_bits, 64);
        assert_eq!(rt.metrics().total_bits, 64);
        assert_eq!(rt.metrics().bandwidth_violations, 0);
    }
}
