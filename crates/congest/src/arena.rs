//! Aligned, checksummed section containers for v3 zero-copy snapshots.
//!
//! The v2 snapshot streams of [`crate::wire`] are *self-describing
//! sequences*: every table is a length prefix followed by per-element
//! little-endian fields, read back one element at a time through a
//! `&mut dyn Read`. That shape is robust but slow to load — a 335 MB
//! routing table costs tens of millions of virtual `read_exact` calls.
//!
//! An **arena** instead lays the same tables out as a flat *directory of
//! sections*:
//!
//! ```text
//! ┌──────────────┬──────────────────────────┬───────────────┬──────────┐
//! │ count: u64   │ directory: count ×       │ body: packed  │ checksum │
//! │              │   (offset: u64, len: u64)│ 8-aligned     │ u64      │
//! │              │                          │ sections      │          │
//! └──────────────┴──────────────────────────┴───────────────┴──────────┘
//! ```
//!
//! * every section offset is a multiple of 8 **relative to the body
//!   start**, and the body itself starts at a multiple of 8 from the
//!   container start (8 + 16·count), so an arena loaded at an 8-aligned
//!   address has every `u64` table 8-aligned;
//! * offsets and lengths are validated with checked arithmetic against
//!   the actual buffer before any section is handed out — a corrupted
//!   directory yields `InvalidData`, never an out-of-bounds panic;
//! * the trailing checksum (an 8-lane word-folding hash, see
//!   [`Digest`]) covers the count, directory and body, so bit rot is
//!   detected up front in one streaming pass at memory speed instead of
//!   piecemeal by shape checks.
//!
//! The container is parsed **without copying the body**: the caller hands
//! [`ArenaReader::parse`] a [`SharedBytes`] (a reference-counted byte
//! buffer), and every section comes back as a sub-range of that same
//! allocation. Bulk tables stay in place behind the typed accessors
//! [`U64View`] / [`U32View`] — `get(i)` decodes one little-endian word on
//! demand — so loading an arena costs one checksum pass plus O(sections)
//! directory work, not a copy of the payload.
//!
//! Readers consume sections *in writer order* through an [`ArenaCursor`];
//! zero-copy views come from [`ArenaCursor::u64v`] /
//! [`ArenaCursor::u32v`] / [`ArenaCursor::shared`], eager decodes from
//! [`ArenaCursor::u64s`] / [`ArenaCursor::u32s`] (a `chunks_exact` loop
//! the compiler turns into a straight copy), and small heterogeneous
//! metadata rides along as an embedded [`crate::wire`] stream via
//! [`ArenaWriter::stream`] / [`ArenaCursor::bytes`].
//!
//! Truncated containers (buffer shorter than the directory promises) are
//! reported as the typed [`crate::wire::SnapshotError::Truncated`] wrapped
//! in `InvalidData`, exactly like a premature EOF in a v2 stream.

use crate::wire::{invalid_data, truncated};
use std::io::{self, Write};
use std::ops::Range;
use std::sync::Arc;

/// Multiplier of the word-folding checksum (the `FxHasher` constant; see
/// [`crate::fxhash`]).
const K: u64 = 0x517c_c1b7_2722_0a95;

/// Streaming 8-lane word-folding digest over little-endian `u64` words.
///
/// Each word is folded into one of eight independent accumulator lanes
/// (`rotate ⊕ word, × K` — the `FxHasher` step), so the hot loop carries
/// eight independent dependency chains and runs at memory speed; the
/// lanes and total length are folded together in [`Digest::finish`].
/// When an update starts on a lane boundary (which one whole-container
/// checksum pass always does), words are consumed in unrolled 64-byte
/// blocks. This is an *integrity* checksum for storage bit rot, not a
/// cryptographic MAC.
#[derive(Debug)]
pub struct Digest {
    lanes: [u64; 8],
    words: u64,
}

impl Default for Digest {
    fn default() -> Self {
        Self::new()
    }
}

impl Digest {
    /// A fresh digest.
    pub fn new() -> Self {
        let mut lanes = [0u64; 8];
        for (j, lane) in lanes.iter_mut().enumerate() {
            *lane = K.rotate_left(8 * j as u32);
        }
        Digest { lanes, words: 0 }
    }

    /// Folds `bytes` into the digest. `bytes.len()` must be a multiple
    /// of 8 (arena streams are always 8-padded).
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() % 8 != 0` (an internal invariant of the
    /// arena layout, not reachable from untrusted input).
    pub fn update(&mut self, bytes: &[u8]) {
        assert_eq!(bytes.len() % 8, 0, "digest input must be word-aligned");
        let mut i = (self.words % 8) as usize;
        self.words += (bytes.len() / 8) as u64;
        let mut rest = bytes;
        if i == 0 {
            // Lane-aligned entry: word j of each 64-byte block always
            // lands in lane j, so the rotation of the lane index unrolls
            // away entirely.
            let blocks = rest.chunks_exact(64);
            rest = blocks.remainder();
            for block in blocks {
                for (lane, w) in self.lanes.iter_mut().zip(block.chunks_exact(8)) {
                    let w = u64::from_le_bytes(w.try_into().expect("8-byte word"));
                    *lane = (lane.rotate_left(5) ^ w).wrapping_mul(K);
                }
            }
        }
        for chunk in rest.chunks_exact(8) {
            let w = u64::from_le_bytes(chunk.try_into().expect("8-byte word"));
            self.lanes[i] = (self.lanes[i].rotate_left(5) ^ w).wrapping_mul(K);
            i = (i + 1) & 7;
        }
    }

    /// Folds the lanes and length into the final 64-bit checksum.
    pub fn finish(&self) -> u64 {
        let mut h = self.words.wrapping_mul(K);
        for &l in &self.lanes {
            h = (h.rotate_left(5) ^ l).wrapping_mul(K);
        }
        h
    }
}

/// One-shot [`Digest`] over a word-aligned byte slice.
fn checksum(bytes: &[u8]) -> u64 {
    let mut d = Digest::new();
    d.update(bytes);
    d.finish()
}

/// A cheaply-cloneable sub-range of a reference-counted byte buffer.
///
/// This is the currency of the zero-copy load path: one `Arc<Vec<u8>>`
/// holds the whole snapshot, and every arena section, table view and
/// installed oracle shares it. [`SharedBytes::slice`] adjusts offsets
/// without touching the bytes; the allocation is freed when the last
/// holder drops.
#[derive(Clone)]
pub struct SharedBytes {
    buf: Arc<Vec<u8>>,
    off: usize,
    len: usize,
}

impl SharedBytes {
    /// Wraps an owned buffer (the only copy-free entry point).
    pub fn from_vec(buf: Vec<u8>) -> Self {
        let len = buf.len();
        SharedBytes {
            buf: Arc::new(buf),
            off: 0,
            len,
        }
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.off..self.off + self.len]
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A sub-view of `range` (relative to this view), sharing the same
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics when `range` exceeds the view, exactly like slice indexing.
    pub fn slice(&self, range: Range<usize>) -> SharedBytes {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "SharedBytes::slice out of range"
        );
        SharedBytes {
            buf: Arc::clone(&self.buf),
            off: self.off + range.start,
            len: range.end - range.start,
        }
    }

    /// Copies the viewed bytes out.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for SharedBytes {
    fn default() -> Self {
        SharedBytes::from_vec(Vec::new())
    }
}

impl std::fmt::Debug for SharedBytes {
    /// Compact on purpose: a derived `Debug` would dump the entire
    /// (possibly hundreds of MB) backing buffer.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SharedBytes {{ off: {}, len: {} }}", self.off, self.len)
    }
}

impl PartialEq for SharedBytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for SharedBytes {}

/// Zero-copy view of a section of little-endian `u64`s.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct U64View(SharedBytes);

impl U64View {
    /// Wraps `bytes` as a `u64` table.
    ///
    /// # Errors
    ///
    /// `InvalidData` when the byte length is not a multiple of 8.
    pub fn new(bytes: SharedBytes) -> io::Result<Self> {
        if !bytes.len().is_multiple_of(8) {
            return Err(invalid_data("u64 section length not a multiple of 8"));
        }
        Ok(U64View(bytes))
    }

    /// Encodes `xs` into a fresh owned view (the build-side constructor).
    pub fn from_vals(xs: &[u64]) -> Self {
        let mut buf = Vec::with_capacity(xs.len() * 8);
        for &x in xs {
            buf.extend_from_slice(&x.to_le_bytes());
        }
        U64View(SharedBytes::from_vec(buf))
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.0.len() / 8
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Decodes word `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds, exactly like slice indexing.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        let b = &self.0.as_slice()[i * 8..i * 8 + 8];
        u64::from_le_bytes(b.try_into().expect("8-byte word"))
    }

    /// Iterates all words in order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.0
            .as_slice()
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte word")))
    }

    /// Iterates the words of `range`.
    ///
    /// # Panics
    ///
    /// Panics when `range` is out of bounds, exactly like slice indexing.
    pub fn iter_range(&self, range: Range<usize>) -> impl Iterator<Item = u64> + '_ {
        self.0.as_slice()[range.start * 8..range.end * 8]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte word")))
    }

    /// Decodes the whole table into a `Vec`.
    pub fn to_vec(&self) -> Vec<u64> {
        self.iter().collect()
    }

    /// The backing bytes (for re-serialization).
    pub fn as_bytes(&self) -> &[u8] {
        self.0.as_slice()
    }
}

/// Zero-copy view of a section of little-endian `u32`s.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct U32View(SharedBytes);

impl U32View {
    /// Wraps `bytes` as a `u32` table.
    ///
    /// # Errors
    ///
    /// `InvalidData` when the byte length is not a multiple of 4.
    pub fn new(bytes: SharedBytes) -> io::Result<Self> {
        if !bytes.len().is_multiple_of(4) {
            return Err(invalid_data("u32 section length not a multiple of 4"));
        }
        Ok(U32View(bytes))
    }

    /// Encodes `xs` into a fresh owned view (the build-side constructor).
    pub fn from_vals(xs: &[u32]) -> Self {
        let mut buf = Vec::with_capacity(xs.len() * 4);
        for &x in xs {
            buf.extend_from_slice(&x.to_le_bytes());
        }
        U32View(SharedBytes::from_vec(buf))
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.0.len() / 4
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Decodes word `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds, exactly like slice indexing.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        let b = &self.0.as_slice()[i * 4..i * 4 + 4];
        u32::from_le_bytes(b.try_into().expect("4-byte word"))
    }

    /// Iterates all words in order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.0
            .as_slice()
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte word")))
    }

    /// Iterates the words of `range`.
    ///
    /// # Panics
    ///
    /// Panics when `range` is out of bounds, exactly like slice indexing.
    pub fn iter_range(&self, range: Range<usize>) -> impl Iterator<Item = u32> + '_ {
        self.0.as_slice()[range.start * 4..range.end * 4]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte word")))
    }

    /// Decodes the whole table into a `Vec`.
    pub fn to_vec(&self) -> Vec<u32> {
        self.iter().collect()
    }

    /// The backing bytes (for re-serialization).
    pub fn as_bytes(&self) -> &[u8] {
        self.0.as_slice()
    }
}

/// Builds an arena: append sections, then [`ArenaWriter::finish`] into
/// any sink.
#[derive(Debug, Default)]
pub struct ArenaWriter {
    dir: Vec<(u64, u64)>,
    body: Vec<u8>,
}

impl ArenaWriter {
    /// A fresh, empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `bytes` as the next section (8-aligned in the body).
    pub fn section(&mut self, bytes: &[u8]) {
        while !self.body.len().is_multiple_of(8) {
            self.body.push(0);
        }
        self.dir.push((self.body.len() as u64, bytes.len() as u64));
        self.body.extend_from_slice(bytes);
    }

    /// Appends a section of little-endian `u64`s.
    pub fn u64s(&mut self, xs: &[u64]) {
        let mut buf = Vec::with_capacity(xs.len() * 8);
        for &x in xs {
            buf.extend_from_slice(&x.to_le_bytes());
        }
        self.section(&buf);
    }

    /// Appends a section of little-endian `u32`s.
    pub fn u32s(&mut self, xs: &[u32]) {
        let mut buf = Vec::with_capacity(xs.len() * 4);
        for &x in xs {
            buf.extend_from_slice(&x.to_le_bytes());
        }
        self.section(&buf);
    }

    /// Appends a section of raw bytes (alias of [`ArenaWriter::section`]
    /// for symmetry with the typed helpers).
    pub fn u8s(&mut self, xs: &[u8]) {
        self.section(xs);
    }

    /// Appends a section produced by a [`crate::wire`]-style writer
    /// closure — the escape hatch for small heterogeneous metadata
    /// (labels, metrics, scalars) that does not merit a typed layout.
    ///
    /// # Errors
    ///
    /// Propagates errors from the closure (writes into a `Vec` cannot
    /// themselves fail).
    pub fn stream(&mut self, f: impl FnOnce(&mut dyn Write) -> io::Result<()>) -> io::Result<()> {
        let mut buf = Vec::new();
        f(&mut buf)?;
        self.section(&buf);
        Ok(())
    }

    /// Serialized size of the finished container in bytes.
    pub fn finished_len(&self) -> usize {
        let body = self.body.len().div_ceil(8) * 8;
        8 + 16 * self.dir.len() + body + 8
    }

    /// Writes the container: count, directory, padded body, checksum.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn finish(&self, sink: &mut dyn Write) -> io::Result<()> {
        let mut head = Vec::with_capacity(8 + 16 * self.dir.len());
        head.extend_from_slice(&(self.dir.len() as u64).to_le_bytes());
        for &(off, len) in &self.dir {
            head.extend_from_slice(&off.to_le_bytes());
            head.extend_from_slice(&len.to_le_bytes());
        }
        let full = self.body.len() / 8 * 8;
        let rem = self.body.len() - full;
        let mut tail = [0u8; 8];
        tail[..rem].copy_from_slice(&self.body[full..]);
        let pad: &[u8] = if rem == 0 { &[] } else { &tail[rem..] };
        let mut d = Digest::new();
        d.update(&head);
        d.update(&self.body[..full]);
        if rem != 0 {
            d.update(&tail);
        }
        sink.write_all(&head)?;
        sink.write_all(&self.body)?;
        sink.write_all(pad)?;
        sink.write_all(&d.finish().to_le_bytes())?;
        Ok(())
    }
}

/// Parsed arena container: validates the directory and checksum once,
/// then hands out sections as slices or zero-copy [`SharedBytes`]
/// sub-views of the buffer it owns.
#[derive(Debug)]
pub struct ArenaReader {
    dir: Vec<(usize, usize)>,
    body: SharedBytes,
}

impl ArenaReader {
    /// Parses and validates `bytes` as one whole arena container.
    ///
    /// # Errors
    ///
    /// `InvalidData` wrapping [`crate::wire::SnapshotError::Truncated`]
    /// when the buffer is shorter than the directory promises, plain
    /// `InvalidData` on a checksum mismatch or a malformed directory.
    pub fn parse(bytes: SharedBytes) -> io::Result<Self> {
        let buf = bytes.as_slice();
        if buf.len() < 16 {
            return Err(truncated());
        }
        let count = u64::from_le_bytes(buf[..8].try_into().expect("8 bytes"));
        let count = usize::try_from(count).map_err(|_| invalid_data("arena section count"))?;
        let dir_bytes = count
            .checked_mul(16)
            .and_then(|d| d.checked_add(16))
            .ok_or_else(|| invalid_data("arena directory size overflow"))?;
        if buf.len() < dir_bytes {
            return Err(truncated());
        }
        // The writer only ever emits whole words, so a container cut at a
        // non-word boundary is a short read, not corruption.
        if !buf.len().is_multiple_of(8) {
            return Err(truncated());
        }
        let body_len = buf.len() - 8 - (dir_bytes - 8);
        let mut dir = Vec::with_capacity(crate::wire::clamped_capacity(count));
        for i in 0..count {
            let at = 8 + 16 * i;
            let off = u64::from_le_bytes(buf[at..at + 8].try_into().expect("8 bytes"));
            let len = u64::from_le_bytes(buf[at + 8..at + 16].try_into().expect("8 bytes"));
            let off = usize::try_from(off).map_err(|_| invalid_data("arena offset"))?;
            let len = usize::try_from(len).map_err(|_| invalid_data("arena length"))?;
            if off % 8 != 0 {
                return Err(invalid_data("unaligned arena section"));
            }
            let end = off
                .checked_add(len)
                .ok_or_else(|| invalid_data("arena section end overflow"))?;
            if end > body_len {
                // The directory promises more bytes than are present —
                // the signature of a container with its tail cut off.
                // (A *tampered* directory also lands here only by
                // re-checksumming; untampered bit damage is caught below.)
                return Err(truncated());
            }
            dir.push((off, len));
        }
        let stored = u64::from_le_bytes(buf[buf.len() - 8..].try_into().expect("8 bytes"));
        if checksum(&buf[..buf.len() - 8]) != stored {
            return Err(invalid_data("arena checksum mismatch"));
        }
        let body = bytes.slice(dir_bytes - 8..bytes.len() - 8);
        Ok(ArenaReader { dir, body })
    }

    /// Number of sections.
    pub fn sections(&self) -> usize {
        self.dir.len()
    }

    /// Borrows section `i`.
    ///
    /// # Errors
    ///
    /// `InvalidData` when `i` is out of range (a codec consuming more
    /// sections than the container carries).
    pub fn section(&self, i: usize) -> io::Result<&[u8]> {
        let &(off, len) = self
            .dir
            .get(i)
            .ok_or_else(|| invalid_data("arena section index out of range"))?;
        Ok(&self.body.as_slice()[off..off + len])
    }

    /// Section `i` as a zero-copy sub-view of the container buffer.
    ///
    /// # Errors
    ///
    /// `InvalidData` when `i` is out of range.
    pub fn shared_section(&self, i: usize) -> io::Result<SharedBytes> {
        let &(off, len) = self
            .dir
            .get(i)
            .ok_or_else(|| invalid_data("arena section index out of range"))?;
        Ok(self.body.slice(off..off + len))
    }

    /// A cursor consuming sections from the front, in writer order.
    pub fn cursor(&self) -> ArenaCursor<'_> {
        ArenaCursor { r: self, idx: 0 }
    }
}

/// Decodes a section of little-endian `u64`s.
///
/// # Errors
///
/// `InvalidData` when the byte length is not a multiple of 8.
pub fn decode_u64s(bytes: &[u8]) -> io::Result<Vec<u64>> {
    if !bytes.len().is_multiple_of(8) {
        return Err(invalid_data("u64 section length not a multiple of 8"));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect())
}

/// Decodes a section of little-endian `u32`s.
///
/// # Errors
///
/// `InvalidData` when the byte length is not a multiple of 4.
pub fn decode_u32s(bytes: &[u8]) -> io::Result<Vec<u32>> {
    if !bytes.len().is_multiple_of(4) {
        return Err(invalid_data("u32 section length not a multiple of 4"));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
        .collect())
}

/// Sequential section consumer; every codec's `read_arena` pulls its
/// sections from one shared cursor in the exact order `write_arena`
/// pushed them.
#[derive(Debug)]
pub struct ArenaCursor<'r> {
    r: &'r ArenaReader,
    idx: usize,
}

impl<'r> ArenaCursor<'r> {
    /// Takes the next section as raw bytes.
    ///
    /// # Errors
    ///
    /// `InvalidData` when all sections are consumed.
    pub fn bytes(&mut self) -> io::Result<&'r [u8]> {
        let s = self.r.section(self.idx)?;
        self.idx += 1;
        Ok(s)
    }

    /// Takes the next section as a zero-copy [`SharedBytes`] view.
    ///
    /// # Errors
    ///
    /// `InvalidData` when all sections are consumed.
    pub fn shared(&mut self) -> io::Result<SharedBytes> {
        let s = self.r.shared_section(self.idx)?;
        self.idx += 1;
        Ok(s)
    }

    /// Takes the next section as a zero-copy `u64` view.
    ///
    /// # Errors
    ///
    /// `InvalidData` on exhaustion or a misaligned length.
    pub fn u64v(&mut self) -> io::Result<U64View> {
        U64View::new(self.shared()?)
    }

    /// Takes the next section as a zero-copy `u32` view.
    ///
    /// # Errors
    ///
    /// `InvalidData` on exhaustion or a misaligned length.
    pub fn u32v(&mut self) -> io::Result<U32View> {
        U32View::new(self.shared()?)
    }

    /// Takes the next section as `u64`s.
    ///
    /// # Errors
    ///
    /// `InvalidData` on exhaustion or a misaligned length.
    pub fn u64s(&mut self) -> io::Result<Vec<u64>> {
        decode_u64s(self.bytes()?)
    }

    /// Takes the next section as `u32`s.
    ///
    /// # Errors
    ///
    /// `InvalidData` on exhaustion or a misaligned length.
    pub fn u32s(&mut self) -> io::Result<Vec<u32>> {
        decode_u32s(self.bytes()?)
    }

    /// Takes the next section as owned bytes.
    ///
    /// # Errors
    ///
    /// `InvalidData` on exhaustion.
    pub fn u8s(&mut self) -> io::Result<Vec<u8>> {
        Ok(self.bytes()?.to_vec())
    }

    /// Takes the next section as `bool`s (one byte each, 0/1).
    ///
    /// # Errors
    ///
    /// `InvalidData` on exhaustion or a byte other than 0/1.
    pub fn bools(&mut self) -> io::Result<Vec<bool>> {
        self.bytes()?
            .iter()
            .map(|&b| match b {
                0 => Ok(false),
                1 => Ok(true),
                b => Err(invalid_data(format!("invalid bool byte {b}"))),
            })
            .collect()
    }

    /// Sections not yet consumed.
    pub fn remaining(&self) -> usize {
        self.r.sections().saturating_sub(self.idx)
    }

    /// Asserts that every section was consumed (trailing sections mean
    /// writer/reader disagree on the layout).
    ///
    /// # Errors
    ///
    /// `InvalidData` when sections remain.
    pub fn expect_end(&self) -> io::Result<()> {
        if self.remaining() != 0 {
            return Err(invalid_data(format!(
                "{} unconsumed arena sections",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::is_truncated;

    fn build() -> Vec<u8> {
        let mut a = ArenaWriter::new();
        a.u64s(&[1, u64::MAX, 42]);
        a.u32s(&[7, 8, 9, 10, 11]);
        a.u8s(&[1, 0, 1]);
        a.stream(|sink| {
            let mut w = crate::wire::WireWriter::new(sink);
            w.u16(99)?;
            w.f64(0.5)
        })
        .unwrap();
        let mut buf = Vec::new();
        a.finish(&mut buf).unwrap();
        assert_eq!(buf.len(), a.finished_len());
        buf
    }

    fn parse(buf: &[u8]) -> io::Result<ArenaReader> {
        ArenaReader::parse(SharedBytes::from_vec(buf.to_vec()))
    }

    #[test]
    fn sections_round_trip_in_order() {
        let r = parse(&build()).unwrap();
        assert_eq!(r.sections(), 4);
        let mut c = r.cursor();
        assert_eq!(c.u64s().unwrap(), vec![1, u64::MAX, 42]);
        assert_eq!(c.u32s().unwrap(), vec![7, 8, 9, 10, 11]);
        assert_eq!(c.bools().unwrap(), vec![true, false, true]);
        let mut s = c.bytes().unwrap();
        let mut w = crate::wire::WireReader::new(&mut s);
        assert_eq!(w.u16().unwrap(), 99);
        assert_eq!(w.f64().unwrap(), 0.5);
        c.expect_end().unwrap();
    }

    #[test]
    fn views_decode_without_copying() {
        let r = parse(&build()).unwrap();
        let mut c = r.cursor();
        let v64 = c.u64v().unwrap();
        assert_eq!(v64.len(), 3);
        assert_eq!(v64.get(1), u64::MAX);
        assert_eq!(v64.to_vec(), vec![1, u64::MAX, 42]);
        assert_eq!(v64.iter_range(1..3).collect::<Vec<_>>(), vec![u64::MAX, 42]);
        let v32 = c.u32v().unwrap();
        assert_eq!(v32.len(), 5);
        assert_eq!(v32.get(4), 11);
        assert_eq!(v32.iter_range(1..3).collect::<Vec<_>>(), vec![8, 9]);
        // Views of the same container share its allocation.
        assert_eq!(c.shared().unwrap().as_slice(), &[1, 0, 1]);
        // A view rebuilt from decoded values compares equal by content.
        assert_eq!(U64View::from_vals(&[1, u64::MAX, 42]), v64);
        assert_eq!(U32View::from_vals(&v32.to_vec()), v32);
    }

    #[test]
    fn shared_bytes_subslices_share_the_buffer() {
        let b = SharedBytes::from_vec((0..32u8).collect());
        let mid = b.slice(8..24);
        assert_eq!(mid.len(), 16);
        assert_eq!(mid.as_slice()[0], 8);
        let inner = mid.slice(4..8);
        assert_eq!(inner.as_slice(), &[12, 13, 14, 15]);
        assert_eq!(inner.to_vec(), vec![12, 13, 14, 15]);
    }

    #[test]
    fn sections_are_word_aligned() {
        let r = parse(&build()).unwrap();
        for i in 0..r.sections() {
            let s = r.shared_section(i).unwrap();
            // The container was parsed at offset 0, so the absolute
            // offset within the buffer is the alignment that matters.
            assert_eq!(s.off % 8, 0, "section {i} misaligned");
        }
    }

    #[test]
    fn every_flipped_bit_is_detected() {
        let buf = build();
        for byte in 0..buf.len() {
            let mut bad = buf.clone();
            bad[byte] ^= 1;
            assert!(parse(&bad).is_err(), "flip at {byte} accepted");
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let buf = build();
        for keep in 0..buf.len() {
            let err = match parse(&buf[..keep]) {
                Err(e) => e,
                Ok(_) => panic!("truncation to {keep} bytes accepted"),
            };
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "at {keep}");
            assert!(is_truncated(&err), "truncation at {keep} not typed");
        }
    }

    #[test]
    fn adversarial_directories_are_rejected() {
        // Section out of bounds.
        let mut a = ArenaWriter::new();
        a.u64s(&[5]);
        let mut buf = Vec::new();
        a.finish(&mut buf).unwrap();
        let patch = |buf: &Vec<u8>, at: usize, v: u64| {
            let mut b = buf.clone();
            b[at..at + 8].copy_from_slice(&v.to_le_bytes());
            let c = checksum(&b[..b.len() - 8]);
            let at = b.len() - 8;
            b[at..].copy_from_slice(&c.to_le_bytes());
            b
        };
        // Huge length field (re-checksummed so only the bounds check fires).
        assert!(parse(&patch(&buf, 16, u64::MAX)).is_err());
        // Unaligned offset.
        assert!(parse(&patch(&buf, 8, 4)).is_err());
        // Section count pointing past the buffer.
        assert!(parse(&patch(&buf, 0, u64::MAX)).is_err());
        // off + len overflow (off aligned, end wraps): off = MAX-7, len = 16.
        let b = patch(&buf, 8, u64::MAX - 7);
        assert!(parse(&patch(&b, 16, 16)).is_err());
    }

    #[test]
    fn digest_is_chunking_invariant() {
        let bytes: Vec<u8> = (0..128u8).collect();
        let mut one = Digest::new();
        one.update(&bytes);
        let mut many = Digest::new();
        many.update(&bytes[..8]);
        many.update(&bytes[8..48]);
        many.update(&bytes[48..]);
        assert_eq!(one.finish(), many.finish());
        assert_eq!(one.finish(), checksum(&bytes));
    }
}
