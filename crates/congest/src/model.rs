//! Core identifiers and the message-size trait.

use std::fmt;

/// Identifier of a network node.
///
/// Nodes are numbered `0..n`. The paper assumes each node has a unique
/// `O(log n)`-bit identifier; a `u32` index plays that role here (and its
/// *semantic* size in bits is `ceil(log2 n)`, which is what
/// [`bits_for`] computes for bandwidth accounting).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the node id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `i` does not fit in a `u32`.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        NodeId(u32::try_from(i).expect("node index exceeds u32 range"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// A port is the index of an incident arc in a node's (sorted) arc list.
///
/// Routing tables in the paper map a destination label to "the next hop",
/// i.e. to one of the node's incident edges; ports are the local names of
/// those edges.
pub type Port = u32;

/// Number of bits needed to address `universe` distinct values.
///
/// `bits_for(0)` and `bits_for(1)` are 0; otherwise `ceil(log2 universe)`.
#[inline]
pub fn bits_for(universe: u64) -> usize {
    if universe <= 1 {
        0
    } else {
        64 - (universe - 1).leading_zeros() as usize
    }
}

/// Semantic size in bits of a routing-label record: `id_fields` node
/// identifiers (each `⌈log₂ n⌉` bits) plus one value field per entry of
/// `values`, where a value `x` costs `bits_for(x + 1)` bits (enough to
/// address the half-open universe `0..=x`).
///
/// This is the one formula behind every label-size computation in the
/// repository (`RtcLabel`, `CompactLabel`, `TruncLabel`); the unit test
/// below pins it.
#[inline]
pub fn label_record_bits(n: u64, id_fields: usize, values: &[u64]) -> usize {
    id_fields * bits_for(n) + values.iter().map(|&x| bits_for(x + 1)).sum::<usize>()
}

/// Trait for CONGEST messages: anything sent over an edge in one round.
///
/// Implementors report their size in bits so the runtime can enforce (or
/// just record) the `B ∈ Θ(log n)` bandwidth bound of the model.
pub trait Message: Clone + fmt::Debug {
    /// Semantic size of this message in bits.
    ///
    /// This should be the information-theoretic size of the *encoded*
    /// message (e.g. `2⌈log n⌉ + 1` bits for a `(distance, source, flag)`
    /// triple), not `size_of::<Self>()`.
    fn bit_size(&self) -> usize;
}

impl Message for u64 {
    fn bit_size(&self) -> usize {
        64
    }
}

impl Message for u32 {
    fn bit_size(&self) -> usize {
        32
    }
}

impl Message for () {
    fn bit_size(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let v = NodeId::from_index(17);
        assert_eq!(v.index(), 17);
        assert_eq!(v, NodeId(17));
        assert_eq!(format!("{v}"), "v17");
    }

    #[test]
    fn bits_for_small_universes() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 0);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(1 << 20), 20);
        assert_eq!(bits_for((1 << 20) + 1), 21);
    }

    #[test]
    fn label_record_bits_pins_the_formula() {
        // n = 30 → id fields cost ⌈log₂ 30⌉ = 5 bits each; a value x costs
        // bits_for(x + 1) = ⌈log₂(x + 1)⌉ bits (0 is free).
        assert_eq!(label_record_bits(30, 2, &[]), 10);
        assert_eq!(label_record_bits(30, 0, &[0]), 0);
        assert_eq!(label_record_bits(30, 0, &[1]), 1);
        assert_eq!(label_record_bits(30, 0, &[255]), 8);
        assert_eq!(
            label_record_bits(30, 2, &[17, 4]),
            2 * 5 + bits_for(18) + bits_for(5)
        );
        // Exactly the historical per-label formulas:
        // RtcLabel: 2 ids + dist + dfs.
        assert_eq!(
            label_record_bits(64, 2, &[100, 7]),
            2 * bits_for(64) + bits_for(101) + bits_for(8)
        );
    }

    #[test]
    fn node_id_ordering_is_by_index() {
        assert!(NodeId(3) < NodeId(10));
        let mut v = vec![NodeId(5), NodeId(1), NodeId(3)];
        v.sort();
        assert_eq!(v, vec![NodeId(1), NodeId(3), NodeId(5)]);
    }
}
