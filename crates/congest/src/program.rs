//! The node-program trait and its per-round execution context.

use crate::model::{Message, NodeId, Port};
use crate::topology::Topology;

/// A message delivered to a node at the start of a round.
#[derive(Clone, Debug)]
pub struct Arrival<M> {
    /// The local port the message arrived on.
    pub port: Port,
    /// The message payload.
    pub msg: M,
}

/// A distributed node program, one instance per node.
///
/// The runtime calls [`Program::round`] once per round for every node, in
/// node-id order (the order is unobservable to programs — all sends take
/// effect simultaneously at the end of the round, as in the synchronous
/// model).
pub trait Program {
    /// The message type this program exchanges.
    type Msg: Message;

    /// Executes one round: read `ctx.inbox()`, update local state, and send
    /// at most one message per port via [`Ctx::send`] / [`Ctx::broadcast`].
    ///
    /// Round 0 is called with an empty inbox (it corresponds to the round in
    /// which inputs have just been placed at the nodes).
    fn round(&mut self, ctx: &mut Ctx<'_, Self::Msg>);

    /// `true` if this node will not send any further messages unless it
    /// receives one first.
    ///
    /// Used for quiescence detection: the runtime stops early when no
    /// messages are in flight, the last round sent nothing, and every
    /// program reports `is_idle()`. The default is conservative for
    /// message-driven programs (idle when nothing arrived last round is
    /// *not* assumed; programs with internal send queues should override).
    fn is_idle(&self) -> bool {
        true
    }
}

/// Outgoing messages produced by one node in one round.
#[derive(Debug)]
pub(crate) struct Outbox<M> {
    /// `(port, msg)` pairs, at most one per port.
    pub sends: Vec<(Port, M)>,
}

/// Per-round execution context handed to [`Program::round`].
///
/// Exposes the node's local view of the topology (its id, degree, and the
/// weight/delay of incident arcs — exactly the input the paper assumes each
/// node is given) plus the inbox and an outbox.
#[derive(Debug)]
pub struct Ctx<'a, M> {
    pub(crate) node: NodeId,
    pub(crate) round: u64,
    pub(crate) topo: &'a Topology,
    pub(crate) inbox: &'a [Arrival<M>],
    pub(crate) out: Outbox<M>,
    pub(crate) port_used: Vec<bool>,
}

impl<'a, M: Message> Ctx<'a, M> {
    pub(crate) fn new(
        node: NodeId,
        round: u64,
        topo: &'a Topology,
        inbox: &'a [Arrival<M>],
    ) -> Self {
        Ctx {
            node,
            round,
            topo,
            inbox,
            out: Outbox { sends: Vec::new() },
            port_used: vec![false; topo.degree(node)],
        }
    }

    /// This node's id.
    #[inline]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The current round number (starting at 0).
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// This node's degree.
    #[inline]
    pub fn degree(&self) -> usize {
        self.topo.degree(self.node)
    }

    /// The neighbor behind `port`.
    #[inline]
    pub fn neighbor(&self, port: Port) -> NodeId {
        self.topo.neighbor(self.node, port)
    }

    /// The weight of the incident edge at `port`.
    #[inline]
    pub fn weight(&self, port: Port) -> u64 {
        self.topo.weight(self.node, port)
    }

    /// The delay of the incident arc at `port` (1 in plain CONGEST; the
    /// subdivision length of the edge when simulating a `G_i`).
    #[inline]
    pub fn delay(&self, port: Port) -> u64 {
        self.topo.delay(self.node, port)
    }

    /// Messages that arrived at the start of this round, sorted by port.
    #[inline]
    pub fn inbox(&self) -> &[Arrival<M>] {
        self.inbox
    }

    /// Sends `msg` over `port` (delivered `delay(port)` rounds later).
    ///
    /// # Panics
    ///
    /// Panics if a message was already sent on `port` this round (the
    /// CONGEST model allows one message per edge per round) or if `port`
    /// is out of range.
    pub fn send(&mut self, port: Port, msg: M) {
        assert!(
            (port as usize) < self.port_used.len(),
            "send: port {port} out of range for node {} (degree {})",
            self.node,
            self.port_used.len()
        );
        assert!(
            !self.port_used[port as usize],
            "CONGEST violation: node {} sent two messages on port {port} in round {}",
            self.node, self.round
        );
        self.port_used[port as usize] = true;
        self.out.sends.push((port, msg));
    }

    /// Sends a copy of `msg` over every incident edge.
    ///
    /// # Panics
    ///
    /// Panics if any port was already used this round.
    pub fn broadcast(&mut self, msg: M) {
        for port in 0..self.degree() as Port {
            self.send(port, msg.clone());
        }
    }

    /// `true` if no message has been sent on `port` yet this round.
    #[inline]
    pub fn port_free(&self, port: Port) -> bool {
        !self.port_used[port as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    #[test]
    fn ctx_exposes_local_view() {
        let topo = Topology::from_edges(3, &[(0, 1, 4), (0, 2, 6)]).unwrap();
        let inbox: Vec<Arrival<u32>> = vec![];
        let ctx = Ctx::<u32>::new(NodeId(0), 3, &topo, &inbox);
        assert_eq!(ctx.node(), NodeId(0));
        assert_eq!(ctx.round(), 3);
        assert_eq!(ctx.degree(), 2);
        assert_eq!(ctx.neighbor(0), NodeId(1));
        assert_eq!(ctx.weight(1), 6);
        assert_eq!(ctx.delay(0), 1);
    }

    #[test]
    #[should_panic(expected = "CONGEST violation")]
    fn double_send_panics() {
        let topo = Topology::from_edges(2, &[(0, 1, 1)]).unwrap();
        let inbox: Vec<Arrival<u32>> = vec![];
        let mut ctx = Ctx::<u32>::new(NodeId(0), 0, &topo, &inbox);
        ctx.send(0, 1);
        ctx.send(0, 2);
    }

    #[test]
    fn broadcast_uses_every_port_once() {
        let topo = Topology::from_edges(4, &[(0, 1, 1), (0, 2, 1), (0, 3, 1)]).unwrap();
        let inbox: Vec<Arrival<u32>> = vec![];
        let mut ctx = Ctx::<u32>::new(NodeId(0), 0, &topo, &inbox);
        ctx.broadcast(9);
        assert_eq!(ctx.out.sends.len(), 3);
        assert!(!ctx.port_free(0) && !ctx.port_free(1) && !ctx.port_free(2));
    }
}
