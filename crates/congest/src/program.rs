//! The node-program trait and its per-round execution context.

use crate::model::{Message, NodeId, Port};
use crate::topology::Topology;

/// A message delivered to a node at the start of a round.
#[derive(Clone, Debug)]
pub struct Arrival<M> {
    /// The local port the message arrived on.
    pub port: Port,
    /// The message payload.
    pub msg: M,
}

/// A distributed node program, one instance per node.
///
/// The runtime calls [`Program::round`] once per round for every node, in
/// node-id order (the order is unobservable to programs — all sends take
/// effect simultaneously at the end of the round, as in the synchronous
/// model).
pub trait Program {
    /// The message type this program exchanges.
    type Msg: Message;

    /// Executes one round: read `ctx.inbox()`, update local state, and send
    /// at most one message per port via [`Ctx::send`] / [`Ctx::broadcast`].
    ///
    /// Round 0 is called with an empty inbox (it corresponds to the round in
    /// which inputs have just been placed at the nodes).
    fn round(&mut self, ctx: &mut Ctx<'_, Self::Msg>);

    /// `true` if this node will not act unless it receives a message first.
    ///
    /// The runtime uses this two ways:
    ///
    /// * **Quiescence detection** — the run stops early when no messages
    ///   are in flight, the last round sent nothing, and every program
    ///   reports `is_idle()`.
    /// * **Skip license** — after round 0, a node that is idle and
    ///   received nothing this round is not stepped at all (its `round`
    ///   must be a no-op in that situation — which is exactly what "idle"
    ///   promises).
    ///
    /// The default `true` fits purely message-driven programs (all the
    /// programs in this repository). A program that acts *spontaneously*
    /// after round 0 — timers, staged starts, internal send queues — MUST
    /// override this to return `false` until it is done acting on its
    /// own; with the default it would neither keep the network awake nor
    /// be stepped on its trigger round.
    fn is_idle(&self) -> bool {
        true
    }
}

/// Per-round execution context handed to [`Program::round`].
///
/// Exposes the node's local view of the topology (its id, degree, and the
/// weight/delay of incident arcs — exactly the input the paper assumes each
/// node is given) plus the inbox and an outbox.
///
/// The outbox and per-port bookkeeping are *borrowed scratch buffers* owned
/// by the runtime and reused across every node and round, so constructing a
/// `Ctx` allocates nothing.
#[derive(Debug)]
pub struct Ctx<'a, M> {
    pub(crate) node: NodeId,
    pub(crate) round: u64,
    pub(crate) degree: usize,
    pub(crate) topo: &'a Topology,
    pub(crate) inbox: &'a [Arrival<M>],
    pub(crate) sends: &'a mut Vec<(Port, M)>,
    pub(crate) port_used: &'a mut [bool],
}

impl<'a, M: Message> Ctx<'a, M> {
    /// Builds a context over runtime-owned scratch. `port_used` must have
    /// exactly `topo.degree(node)` entries, all `false`; `sends` must be
    /// empty.
    pub(crate) fn new(
        node: NodeId,
        round: u64,
        topo: &'a Topology,
        inbox: &'a [Arrival<M>],
        sends: &'a mut Vec<(Port, M)>,
        port_used: &'a mut [bool],
    ) -> Self {
        debug_assert_eq!(port_used.len(), topo.degree(node));
        debug_assert!(sends.is_empty());
        Ctx {
            node,
            round,
            degree: topo.degree(node),
            topo,
            inbox,
            sends,
            port_used,
        }
    }

    /// This node's id.
    #[inline]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The current round number (starting at 0).
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// This node's degree.
    #[inline]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The neighbor behind `port`.
    #[inline]
    pub fn neighbor(&self, port: Port) -> NodeId {
        self.topo.neighbor(self.node, port)
    }

    /// The weight of the incident edge at `port`.
    #[inline]
    pub fn weight(&self, port: Port) -> u64 {
        self.topo.weight(self.node, port)
    }

    /// The delay of the incident arc at `port` (1 in plain CONGEST; the
    /// subdivision length of the edge when simulating a `G_i`).
    #[inline]
    pub fn delay(&self, port: Port) -> u64 {
        self.topo.delay(self.node, port)
    }

    /// Messages that arrived at the start of this round, sorted by port.
    ///
    /// The returned slice borrows the runtime's delivery buffer, not the
    /// `Ctx` itself, so it can be iterated while calling `&mut self`
    /// methods like [`Ctx::send`] — no defensive copy needed.
    #[inline]
    pub fn inbox(&self) -> &'a [Arrival<M>] {
        self.inbox
    }

    /// Sends `msg` over `port` (delivered `delay(port)` rounds later).
    ///
    /// # Panics
    ///
    /// Panics if a message was already sent on `port` this round (the
    /// CONGEST model allows one message per edge per round) or if `port`
    /// is out of range.
    pub fn send(&mut self, port: Port, msg: M) {
        assert!(
            (port as usize) < self.degree,
            "send: port {port} out of range for node {} (degree {})",
            self.node,
            self.degree
        );
        assert!(
            !self.port_used[port as usize],
            "CONGEST violation: node {} sent two messages on port {port} in round {}",
            self.node, self.round
        );
        self.port_used[port as usize] = true;
        self.sends.push((port, msg));
    }

    /// Sends a copy of `msg` over every incident edge.
    ///
    /// # Panics
    ///
    /// Panics if any port was already used this round.
    pub fn broadcast(&mut self, msg: M) {
        let deg = self.degree as Port;
        if deg == 0 {
            return;
        }
        if self.sends.is_empty() {
            // Fast path: nothing sent yet, so every port is free (sends
            // and flags are 1:1). Skip the per-port checks.
            debug_assert!(self.port_used.iter().all(|u| !u));
            self.port_used.fill(true);
            self.sends.reserve(deg as usize);
            for port in 0..deg - 1 {
                self.sends.push((port, msg.clone()));
            }
            self.sends.push((deg - 1, msg));
            return;
        }
        for port in 0..deg - 1 {
            self.send(port, msg.clone());
        }
        self.send(deg - 1, msg);
    }

    /// `true` if no message has been sent on `port` yet this round.
    #[inline]
    pub fn port_free(&self, port: Port) -> bool {
        !self.port_used[port as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    /// Scratch buffers mirroring what the runtime owns.
    struct Scratch {
        sends: Vec<(Port, u32)>,
        port_used: Vec<bool>,
    }

    impl Scratch {
        fn new(topo: &Topology, node: NodeId) -> Self {
            Scratch {
                sends: Vec::new(),
                port_used: vec![false; topo.degree(node)],
            }
        }
    }

    #[test]
    fn ctx_exposes_local_view() {
        let topo = Topology::from_edges(3, &[(0, 1, 4), (0, 2, 6)]).unwrap();
        let inbox: Vec<Arrival<u32>> = vec![];
        let mut s = Scratch::new(&topo, NodeId(0));
        let ctx = Ctx::<u32>::new(NodeId(0), 3, &topo, &inbox, &mut s.sends, &mut s.port_used);
        assert_eq!(ctx.node(), NodeId(0));
        assert_eq!(ctx.round(), 3);
        assert_eq!(ctx.degree(), 2);
        assert_eq!(ctx.neighbor(0), NodeId(1));
        assert_eq!(ctx.weight(1), 6);
        assert_eq!(ctx.delay(0), 1);
    }

    #[test]
    #[should_panic(expected = "CONGEST violation")]
    fn double_send_panics() {
        let topo = Topology::from_edges(2, &[(0, 1, 1)]).unwrap();
        let inbox: Vec<Arrival<u32>> = vec![];
        let mut s = Scratch::new(&topo, NodeId(0));
        let mut ctx = Ctx::<u32>::new(NodeId(0), 0, &topo, &inbox, &mut s.sends, &mut s.port_used);
        ctx.send(0, 1);
        ctx.send(0, 2);
    }

    #[test]
    fn broadcast_uses_every_port_once() {
        let topo = Topology::from_edges(4, &[(0, 1, 1), (0, 2, 1), (0, 3, 1)]).unwrap();
        let inbox: Vec<Arrival<u32>> = vec![];
        let mut s = Scratch::new(&topo, NodeId(0));
        let mut ctx = Ctx::<u32>::new(NodeId(0), 0, &topo, &inbox, &mut s.sends, &mut s.port_used);
        ctx.broadcast(9);
        assert!(!ctx.port_free(0) && !ctx.port_free(1) && !ctx.port_free(2));
        assert_eq!(s.sends, vec![(0, 9), (1, 9), (2, 9)]);
    }

    #[test]
    fn inbox_outlives_ctx_borrow() {
        // The defining property of the zero-copy inbox: iterate it while
        // mutating the ctx (the old API forced programs to clone arrivals).
        let topo = Topology::from_edges(2, &[(0, 1, 1)]).unwrap();
        let inbox = vec![Arrival {
            port: 0,
            msg: 41u32,
        }];
        let mut s = Scratch::new(&topo, NodeId(0));
        let mut ctx = Ctx::<u32>::new(NodeId(0), 1, &topo, &inbox, &mut s.sends, &mut s.port_used);
        for a in ctx.inbox() {
            ctx.send(a.port, a.msg + 1);
        }
        assert_eq!(s.sends, vec![(0, 42)]);
    }
}
