//! Distributed BFS-tree construction.
//!
//! A BFS tree rooted at a designated node is the standard CONGEST
//! coordination substrate: its construction takes `O(D)` rounds (`D` = hop
//! diameter), and the paper charges `O(D)` terms for exactly this kind of
//! global coordination (learning `w_max`, synchronizing phases,
//! broadcasting skeleton-graph messages).

use crate::metrics::Metrics;
use crate::model::{Message, NodeId, Port};
use crate::program::{Ctx, Program};
use crate::runtime::{Config, Runtime};
use crate::topology::Topology;

/// Messages of the BFS construction protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BfsMsg {
    /// "My BFS depth is `d`" — flooded outward from the root.
    Dist(u64),
    /// "You are my parent" — sent once to the chosen parent.
    Adopt,
}

impl Message for BfsMsg {
    fn bit_size(&self) -> usize {
        match self {
            // depth value + 1 tag bit; depth < n so 32 bits are generous
            BfsMsg::Dist(_) => 33,
            BfsMsg::Adopt => 1,
        }
    }
}

/// Per-node program that floods BFS levels and reports adoption.
#[derive(Debug)]
pub struct BfsProgram {
    is_root: bool,
    depth: Option<u64>,
    parent_port: Option<Port>,
    children: Vec<Port>,
}

impl BfsProgram {
    fn new(is_root: bool) -> Self {
        BfsProgram {
            is_root,
            depth: None,
            parent_port: None,
            children: Vec::new(),
        }
    }
}

impl Program for BfsProgram {
    type Msg = BfsMsg;

    fn round(&mut self, ctx: &mut Ctx<'_, BfsMsg>) {
        if self.is_root && ctx.round() == 0 {
            self.depth = Some(0);
            ctx.broadcast(BfsMsg::Dist(0));
            return;
        }
        let mut best: Option<(u64, Port)> = None;
        for a in ctx.inbox() {
            match a.msg {
                BfsMsg::Dist(d) => {
                    if best.is_none_or(|(bd, bp)| (d, a.port) < (bd, bp)) {
                        best = Some((d, a.port));
                    }
                }
                BfsMsg::Adopt => self.children.push(a.port),
            }
        }
        if self.depth.is_none() {
            if let Some((d, port)) = best {
                self.depth = Some(d + 1);
                self.parent_port = Some(port);
                ctx.send(port, BfsMsg::Adopt);
                for p in 0..ctx.degree() as Port {
                    if p != port {
                        ctx.send(p, BfsMsg::Dist(d + 1));
                    }
                }
            }
        }
    }
}

/// The result of a BFS-tree construction.
#[derive(Clone, Debug)]
pub struct BfsTree {
    /// The root node.
    pub root: NodeId,
    /// BFS depth of each node (root = 0).
    pub depth: Vec<u64>,
    /// Parent of each node (`None` for the root).
    pub parent: Vec<Option<NodeId>>,
    /// Port towards the parent (`None` for the root).
    pub parent_port: Vec<Option<Port>>,
    /// Ports towards the children of each node, sorted.
    pub children: Vec<Vec<Port>>,
    /// Height of the tree (max depth).
    pub height: u64,
}

impl BfsTree {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.depth.len()
    }

    /// `true` if the tree is empty (never for valid construction results).
    pub fn is_empty(&self) -> bool {
        self.depth.is_empty()
    }
}

/// Builds a BFS tree of `topo` rooted at `root` by running the distributed
/// protocol; returns the tree and the run's metrics (`O(D)` rounds).
///
/// BFS layers are hop-based, so this must run on unit delays.
///
/// # Panics
///
/// Panics if `topo` has non-unit delays or is disconnected.
pub fn build_bfs(topo: &Topology, root: NodeId) -> (BfsTree, Metrics) {
    assert_eq!(topo.max_delay(), 1, "BFS requires the unit-delay topology");
    let programs: Vec<BfsProgram> = topo.nodes().map(|v| BfsProgram::new(v == root)).collect();
    let mut rt = Runtime::new(topo, programs, Config::default());
    let report = rt.run();
    assert!(report.quiescent, "BFS did not quiesce within budget");
    let (programs, metrics) = rt.into_parts();

    let mut depth = Vec::with_capacity(topo.len());
    let mut parent = Vec::with_capacity(topo.len());
    let mut parent_port = Vec::with_capacity(topo.len());
    let mut children = Vec::with_capacity(topo.len());
    for (i, p) in programs.into_iter().enumerate() {
        let v = NodeId::from_index(i);
        let d = p
            .depth
            .unwrap_or_else(|| panic!("node {v} unreachable from root {root}: graph disconnected"));
        depth.push(d);
        parent.push(p.parent_port.map(|pp| topo.neighbor(v, pp)));
        parent_port.push(p.parent_port);
        let mut ch = p.children;
        ch.sort_unstable();
        children.push(ch);
    }
    let height = depth.iter().copied().max().unwrap_or(0);
    (
        BfsTree {
            root,
            depth,
            parent,
            parent_port,
            children,
            height,
        },
        metrics,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_graph_bfs() {
        let topo = Topology::from_edges(5, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 4, 1)]).unwrap();
        let (tree, metrics) = build_bfs(&topo, NodeId(0));
        assert_eq!(tree.depth, vec![0, 1, 2, 3, 4]);
        assert_eq!(tree.height, 4);
        assert_eq!(tree.parent[2], Some(NodeId(1)));
        assert_eq!(tree.parent[0], None);
        assert_eq!(tree.children[0].len(), 1);
        assert_eq!(tree.children[4].len(), 0);
        // BFS completes in O(D) rounds: depth 4 tree, ≤ height + 2 rounds.
        assert!(metrics.rounds <= tree.height + 2);
    }

    #[test]
    fn bfs_ignores_weights() {
        // Heavy direct edge, light two-hop path: BFS uses hops, not weights.
        let topo = Topology::from_edges(3, &[(0, 2, 100), (0, 1, 1), (1, 2, 1)]).unwrap();
        let (tree, _) = build_bfs(&topo, NodeId(0));
        assert_eq!(tree.depth[2], 1); // direct hop, despite weight 100
    }

    #[test]
    fn children_match_parents() {
        let topo =
            Topology::from_edges(6, &[(0, 1, 1), (0, 2, 1), (1, 3, 1), (2, 4, 1), (2, 5, 1)])
                .unwrap();
        let (tree, _) = build_bfs(&topo, NodeId(0));
        let mut pair_count = 0;
        for v in topo.nodes() {
            for &cp in &tree.children[v.index()] {
                let c = topo.neighbor(v, cp);
                assert_eq!(tree.parent[c.index()], Some(v));
                pair_count += 1;
            }
        }
        assert_eq!(pair_count, 5); // n - 1 tree edges
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn disconnected_panics() {
        let topo = Topology::from_edges(4, &[(0, 1, 1), (2, 3, 1)]).unwrap();
        build_bfs(&topo, NodeId(0));
    }
}
