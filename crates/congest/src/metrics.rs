//! Execution metrics: the quantities the paper's theorems bound.

/// Metrics recorded by a [`crate::Runtime`] run.
///
/// The paper's results are statements about *rounds* (time complexity in
/// the CONGEST model), *messages* (Lemma 3.4 bounds per-node broadcasts,
/// which drives the skeleton-graph simulation cost in Section 4.3) and
/// *message size* (the `B ∈ Θ(log n)` bandwidth bound). All three are
/// recorded here.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Number of rounds executed (including the final quiet round, if any).
    pub rounds: u64,
    /// Total number of messages sent.
    pub messages: u64,
    /// Messages sent per node (indexed by node id).
    pub per_node_sent: Vec<u64>,
    /// Messages sent per round (indexed by round; used to charge the
    /// `Σ_i O(M_i + D)` cost of simulating skeleton-graph rounds over a
    /// BFS tree, Lemma 4.12).
    pub per_round_sent: Vec<u64>,
    /// Largest single message, in bits.
    pub max_message_bits: usize,
    /// Sum of all message sizes, in bits.
    pub total_bits: u64,
    /// Number of messages exceeding the configured bandwidth `B`.
    pub bandwidth_violations: u64,
}

impl Metrics {
    /// Creates empty metrics for `n` nodes.
    pub fn new(n: usize) -> Self {
        Metrics {
            per_node_sent: vec![0; n],
            ..Default::default()
        }
    }

    /// Largest number of messages sent by any single node.
    pub fn max_per_node(&self) -> u64 {
        self.per_node_sent.iter().copied().max().unwrap_or(0)
    }

    /// Adds another run's metrics (for multi-phase algorithms that execute
    /// several runtime invocations back to back: rounds add up, message
    /// counts add up element-wise).
    pub fn absorb(&mut self, other: &Metrics) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        if self.per_node_sent.len() < other.per_node_sent.len() {
            self.per_node_sent.resize(other.per_node_sent.len(), 0);
        }
        for (a, b) in self.per_node_sent.iter_mut().zip(&other.per_node_sent) {
            *a += b;
        }
        self.per_round_sent.extend_from_slice(&other.per_round_sent);
        self.max_message_bits = self.max_message_bits.max(other.max_message_bits);
        self.total_bits += other.total_bits;
        self.bandwidth_violations += other.bandwidth_violations;
    }

    /// Adds `rounds` idle rounds (e.g. an explicitly charged `O(D)`
    /// synchronization barrier that sends no messages).
    pub fn charge_rounds(&mut self, rounds: u64) {
        self.rounds += rounds;
        self.per_round_sent
            .extend(std::iter::repeat_n(0, rounds as usize));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut a = Metrics::new(2);
        a.rounds = 3;
        a.messages = 5;
        a.per_node_sent = vec![2, 3];
        a.per_round_sent = vec![1, 2, 2];
        a.max_message_bits = 10;
        a.total_bits = 50;

        let mut b = Metrics::new(2);
        b.rounds = 2;
        b.messages = 4;
        b.per_node_sent = vec![4, 0];
        b.per_round_sent = vec![4, 0];
        b.max_message_bits = 12;
        b.total_bits = 48;

        a.absorb(&b);
        assert_eq!(a.rounds, 5);
        assert_eq!(a.messages, 9);
        assert_eq!(a.per_node_sent, vec![6, 3]);
        assert_eq!(a.per_round_sent, vec![1, 2, 2, 4, 0]);
        assert_eq!(a.max_message_bits, 12);
        assert_eq!(a.total_bits, 98);
        assert_eq!(a.max_per_node(), 6);
    }

    #[test]
    fn charge_rounds_extends_history() {
        let mut m = Metrics::new(1);
        m.rounds = 2;
        m.per_round_sent = vec![1, 1];
        m.charge_rounds(3);
        assert_eq!(m.rounds, 5);
        assert_eq!(m.per_round_sent, vec![1, 1, 0, 0, 0]);
    }
}
