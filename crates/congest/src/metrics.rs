//! Execution metrics: the quantities the paper's theorems bound.

use std::collections::VecDeque;

/// Default number of recent rounds retained by a [`RoundWindow`].
pub const DEFAULT_ROUND_WINDOW: usize = 1 << 16;

/// Per-round message counts with bounded memory.
///
/// Long simulations execute millions of rounds; storing one counter per
/// round forever would grow memory linearly in simulated time. A
/// `RoundWindow` keeps exact *totals* (rounds recorded, messages summed)
/// for the whole run plus the per-round detail of the most recent
/// [`DEFAULT_ROUND_WINDOW`] rounds, which is what the `Σ_i O(M_i + D)`
/// charging arguments (Lemma 4.12) and the tests actually consume.
#[derive(Clone, Debug)]
pub struct RoundWindow {
    cap: usize,
    window: VecDeque<u64>,
    rounds: u64,
    sum: u64,
}

impl Default for RoundWindow {
    fn default() -> Self {
        RoundWindow::with_capacity(DEFAULT_ROUND_WINDOW)
    }
}

impl RoundWindow {
    /// An empty history retaining per-round detail for up to `cap` rounds.
    pub fn with_capacity(cap: usize) -> Self {
        RoundWindow {
            cap: cap.max(1),
            window: VecDeque::new(),
            rounds: 0,
            sum: 0,
        }
    }

    /// Records the message count of the next round.
    pub fn push(&mut self, sent: u64) {
        self.push_retained(sent);
        self.rounds += 1;
        self.sum += sent;
    }

    /// Records `k` consecutive rounds that sent nothing (an explicitly
    /// charged synchronization barrier), in O(min(k, capacity)).
    pub fn push_zeros(&mut self, k: u64) {
        if k as u128 >= self.cap as u128 {
            self.window.clear();
            self.window.extend(std::iter::repeat_n(0, self.cap));
        } else {
            for _ in 0..k {
                self.push_retained(0);
            }
        }
        self.rounds += k;
    }

    fn push_retained(&mut self, sent: u64) {
        if self.window.len() == self.cap {
            self.window.pop_front();
        }
        self.window.push_back(sent);
    }

    /// Total number of rounds recorded (including evicted ones).
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// `true` if no round was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.rounds == 0
    }

    /// Sum of the message counts over *all* recorded rounds (exact, even
    /// for evicted rounds).
    pub fn total_sent(&self) -> u64 {
        self.sum
    }

    /// Index of the first round whose per-round detail is still retained.
    pub fn first_retained(&self) -> u64 {
        self.rounds - self.window.len() as u64
    }

    /// The message count of round `round`, or `None` if the round was not
    /// recorded or its detail has been evicted.
    pub fn get(&self, round: u64) -> Option<u64> {
        let first = self.first_retained();
        if round < first || round >= self.rounds {
            return None;
        }
        Some(self.window[(round - first) as usize])
    }

    /// Iterates over the retained `(round, sent)` pairs, oldest first.
    pub fn retained(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let first = self.first_retained();
        self.window
            .iter()
            .enumerate()
            .map(move |(i, &v)| (first + i as u64, v))
    }

    /// The retained per-round counts as a `Vec` (for tests and tables).
    pub fn to_vec(&self) -> Vec<u64> {
        self.window.iter().copied().collect()
    }

    /// Appends another history after this one. Totals stay exact; if
    /// `other` already evicted detail, the retained window restarts at
    /// `other`'s retained tail (the most recent contiguous run).
    pub fn absorb(&mut self, other: &RoundWindow) {
        if other.first_retained() > 0 {
            // A gap: our tail and other's tail are not contiguous.
            self.window.clear();
        }
        for &v in &other.window {
            self.push_retained(v);
        }
        self.rounds += other.rounds;
        self.sum += other.sum;
    }
}

impl From<Vec<u64>> for RoundWindow {
    fn from(values: Vec<u64>) -> Self {
        let mut w = RoundWindow::default();
        for v in values {
            w.push(v);
        }
        w
    }
}

/// Metrics recorded by a [`crate::Runtime`] run.
///
/// The paper's results are statements about *rounds* (time complexity in
/// the CONGEST model), *messages* (Lemma 3.4 bounds per-node broadcasts,
/// which drives the skeleton-graph simulation cost in Section 4.3) and
/// *message size* (the `B ∈ Θ(log n)` bandwidth bound). All three are
/// recorded here.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Number of rounds executed (including the final quiet round, if any).
    pub rounds: u64,
    /// Total number of messages sent.
    pub messages: u64,
    /// Messages sent per node (indexed by node id).
    pub per_node_sent: Vec<u64>,
    /// Messages sent per round: exact totals plus a bounded window of
    /// recent per-round detail (used to charge the `Σ_i O(M_i + D)` cost
    /// of simulating skeleton-graph rounds over a BFS tree, Lemma 4.12).
    pub per_round_sent: RoundWindow,
    /// Largest single message, in bits.
    pub max_message_bits: usize,
    /// Sum of all message sizes, in bits.
    pub total_bits: u64,
    /// Number of messages exceeding the configured bandwidth `B`.
    pub bandwidth_violations: u64,
}

impl Metrics {
    /// Creates empty metrics for `n` nodes.
    pub fn new(n: usize) -> Self {
        Metrics {
            per_node_sent: vec![0; n],
            ..Default::default()
        }
    }

    /// Largest number of messages sent by any single node.
    pub fn max_per_node(&self) -> u64 {
        self.per_node_sent.iter().copied().max().unwrap_or(0)
    }

    /// Adds another run's metrics (for multi-phase algorithms that execute
    /// several runtime invocations back to back: rounds add up, message
    /// counts add up element-wise).
    pub fn absorb(&mut self, other: &Metrics) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        if self.per_node_sent.len() < other.per_node_sent.len() {
            self.per_node_sent.resize(other.per_node_sent.len(), 0);
        }
        for (a, b) in self.per_node_sent.iter_mut().zip(&other.per_node_sent) {
            *a += b;
        }
        self.per_round_sent.absorb(&other.per_round_sent);
        self.max_message_bits = self.max_message_bits.max(other.max_message_bits);
        self.total_bits += other.total_bits;
        self.bandwidth_violations += other.bandwidth_violations;
    }

    /// Adds `rounds` idle rounds (e.g. an explicitly charged `O(D)`
    /// synchronization barrier that sends no messages).
    pub fn charge_rounds(&mut self, rounds: u64) {
        self.rounds += rounds;
        self.per_round_sent.push_zeros(rounds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut a = Metrics::new(2);
        a.rounds = 3;
        a.messages = 5;
        a.per_node_sent = vec![2, 3];
        a.per_round_sent = vec![1, 2, 2].into();
        a.max_message_bits = 10;
        a.total_bits = 50;

        let mut b = Metrics::new(2);
        b.rounds = 2;
        b.messages = 4;
        b.per_node_sent = vec![4, 0];
        b.per_round_sent = vec![4, 0].into();
        b.max_message_bits = 12;
        b.total_bits = 48;

        a.absorb(&b);
        assert_eq!(a.rounds, 5);
        assert_eq!(a.messages, 9);
        assert_eq!(a.per_node_sent, vec![6, 3]);
        assert_eq!(a.per_round_sent.to_vec(), vec![1, 2, 2, 4, 0]);
        assert_eq!(a.per_round_sent.rounds(), 5);
        assert_eq!(a.per_round_sent.total_sent(), 9);
        assert_eq!(a.max_message_bits, 12);
        assert_eq!(a.total_bits, 98);
        assert_eq!(a.max_per_node(), 6);
    }

    #[test]
    fn charge_rounds_extends_history() {
        let mut m = Metrics::new(1);
        m.rounds = 2;
        m.per_round_sent = vec![1, 1].into();
        m.charge_rounds(3);
        assert_eq!(m.rounds, 5);
        assert_eq!(m.per_round_sent.to_vec(), vec![1, 1, 0, 0, 0]);
    }

    #[test]
    fn window_bounds_memory_but_keeps_totals() {
        let mut w = RoundWindow::with_capacity(4);
        for i in 0..10u64 {
            w.push(i);
        }
        assert_eq!(w.rounds(), 10);
        assert_eq!(w.total_sent(), 45);
        assert_eq!(w.to_vec(), vec![6, 7, 8, 9]);
        assert_eq!(w.first_retained(), 6);
        assert_eq!(w.get(5), None); // evicted
        assert_eq!(w.get(7), Some(7));
        assert_eq!(w.get(10), None); // never recorded
        let pairs: Vec<(u64, u64)> = w.retained().collect();
        assert_eq!(pairs, vec![(6, 6), (7, 7), (8, 8), (9, 9)]);
    }

    #[test]
    fn multi_million_round_charge_is_bounded() {
        let mut w = RoundWindow::with_capacity(8);
        w.push(3);
        w.push_zeros(5_000_000);
        assert_eq!(w.rounds(), 5_000_001);
        assert_eq!(w.total_sent(), 3);
        assert_eq!(w.to_vec(), vec![0; 8]);
    }

    #[test]
    fn absorb_with_evicted_prefix_restarts_window() {
        let mut a = RoundWindow::with_capacity(8);
        a.push(1);
        let mut b = RoundWindow::with_capacity(2);
        for v in [10, 20, 30] {
            b.push(v);
        }
        a.absorb(&b);
        assert_eq!(a.rounds(), 4);
        assert_eq!(a.total_sent(), 61);
        // b evicted round 0, so only its contiguous tail is retained.
        assert_eq!(a.to_vec(), vec![20, 30]);
        assert_eq!(a.first_retained(), 2);
        assert_eq!(a.get(3), Some(30));
    }
}
