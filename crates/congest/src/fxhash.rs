//! A fast, deterministic hasher for small fixed-width keys.
//!
//! The simulator's output tables are keyed by [`NodeId`](crate::NodeId)s
//! (dense `u32`s). `std`'s default SipHash is a measurable cost when
//! building multi-million-entry routing tables, and its per-map random
//! seed makes iteration order vary between runs. This multiplicative
//! hasher (the `rustc-hash`/FxHash construction: xor then multiply by a
//! large odd constant, mixing into the high bits that hashbrown uses for
//! bucket selection) is ~10× cheaper on word-sized keys and fully
//! deterministic — same inserts, same table, every run.
//!
//! Not DoS-resistant, which is irrelevant here: keys are node ids produced
//! by the simulation, not attacker-controlled input.

use std::hash::{BuildHasherDefault, Hasher};

/// The `rustc-hash` multiplier (`2^64 / φ`, forced odd).
const SEED: u64 = 0x517c_c1b7_2722_0a95;

/// Multiplicative word hasher; see the module docs.
#[derive(Default)]
pub struct FxHasher(u64);

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, deterministic).
pub type FxBuild = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`]: drop-in for word-keyed tables.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuild>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    #[test]
    fn deterministic_across_maps() {
        let mut a: FxHashMap<NodeId, u64> = FxHashMap::default();
        let mut b: FxHashMap<NodeId, u64> = FxHashMap::default();
        for i in 0..1000u32 {
            a.insert(NodeId(i * 7 % 997), u64::from(i));
            b.insert(NodeId(i * 7 % 997), u64::from(i));
        }
        let ka: Vec<NodeId> = a.keys().copied().collect();
        let kb: Vec<NodeId> = b.keys().copied().collect();
        assert_eq!(ka, kb, "iteration order must be reproducible");
    }

    #[test]
    fn distributes_dense_keys() {
        // Dense u32 keys must not collide catastrophically.
        let mut m: FxHashMap<u32, ()> = FxHashMap::default();
        for i in 0..10_000u32 {
            m.insert(i, ());
        }
        assert_eq!(m.len(), 10_000);
    }

    #[test]
    fn byte_writes_match_length_prefixed_semantics() {
        use std::hash::Hash;
        let mut h1 = FxHasher::default();
        let mut h2 = FxHasher::default();
        "abc".hash(&mut h1);
        "abd".hash(&mut h2);
        assert_ne!(h1.finish(), h2.finish());
    }
}
