//! Little-endian wire helpers for versioned binary snapshots.
//!
//! The `oracle` crate persists built distance oracles ("build once, serve
//! from disk"); every scheme crate encodes its own state with these
//! helpers so the framing is uniform and handwritten — fixed-width
//! little-endian integers, `u64` length prefixes for sequences, `f64` as
//! IEEE-754 bits — with no derive machinery or external dependencies.
//!
//! Corruption is reported as [`std::io::ErrorKind::InvalidData`] via
//! [`invalid_data`], so callers only deal with `io::Result`.

use std::io::{self, Read, Write};

/// Reads and checks a scheme-record version tag (little-endian `u16` at
/// the head of a scheme snapshot stream).
///
/// # Errors
///
/// Returns `InvalidData` when the tag differs from `expected` — notably
/// for version-1 hash-table-layout streams, which predate the tag and
/// must be rebuilt rather than migrated.
pub fn check_record_version(source: &mut dyn Read, expected: u16, what: &str) -> io::Result<()> {
    let got = WireReader::new(source).u16()?;
    if got != expected {
        return Err(invalid_data(format!(
            "{what} record version {got} unsupported (expected {expected}; \
             version-1 hash-table snapshots must be rebuilt)"
        )));
    }
    Ok(())
}

/// Builds the `InvalidData` error used for malformed snapshot bytes.
pub fn invalid_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Typed cause attached to snapshot decoding errors, so callers can
/// distinguish *recoverable* snapshot states (rebuild and re-save) from
/// real I/O failures without string-matching error messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The stream ended mid-record: the snapshot file is an incomplete
    /// write (crashed saver, partial copy), not a disk error. A
    /// load-or-rebuild path should treat this as "no usable snapshot".
    Truncated,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated => {
                write!(f, "snapshot truncated: stream ended mid-record")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// The `InvalidData` error wrapping [`SnapshotError::Truncated`].
pub fn truncated() -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, SnapshotError::Truncated)
}

/// Maps a premature-EOF (`UnexpectedEof`) surfaced by any inner
/// `read_exact` to the typed [`SnapshotError::Truncated`] (wrapped in
/// `InvalidData`); every other error passes through unchanged. Snapshot
/// load entry points call this once at the boundary so truncation is
/// typed no matter which record the stream died in.
pub fn map_truncation(e: io::Error) -> io::Error {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        truncated()
    } else {
        e
    }
}

/// `true` if `e` is (or wraps) [`SnapshotError::Truncated`].
pub fn is_truncated(e: &io::Error) -> bool {
    let mut src: Option<&(dyn std::error::Error + 'static)> = e.get_ref().map(|b| b as _);
    while let Some(s) = src {
        if matches!(s.downcast_ref(), Some(SnapshotError::Truncated)) {
            return true;
        }
        // `io::Error::source()` skips its own custom payload, so descend
        // into nested io::Errors by hand or a double wrap goes unseen.
        src = match s.downcast_ref::<io::Error>() {
            Some(inner) => inner.get_ref().map(|b| b as _),
            None => s.source(),
        };
    }
    false
}

/// Upper bound on any length prefix a snapshot reader accepts, as `u64`
/// so the cap itself cannot overflow `usize` on 32-bit targets (where
/// `1usize << 32` would wrap to a useless cap of 1... or panic).
pub const MAX_SEQ_LEN: u64 = 1 << 32;

/// Checked `a · b` for shape products (`n × n` matrices, `m × m`
/// spanner tables) computed from untrusted length fields.
///
/// # Errors
///
/// `InvalidData` when the product overflows `usize` — a tampered length
/// must surface as a decode error, never as wrap-then-panic downstream.
pub fn seq_product(a: usize, b: usize, what: &str) -> io::Result<usize> {
    a.checked_mul(b)
        .ok_or_else(|| invalid_data(format!("{what} size overflow ({a} × {b})")))
}

/// Upper bound on the node count any snapshot reader accepts.
///
/// Node ids are `u32`, and the CSR/matrix structures behind an oracle
/// allocate `O(n)` before edge validation can run — a tampered `n` field
/// must not be able to request an absurd allocation (which would abort
/// instead of returning `InvalidData`). 2²⁸ nodes is far beyond any
/// simulated workload while keeping the pre-validation allocations
/// bounded.
pub const MAX_SNAPSHOT_NODES: usize = 1 << 28;

/// Pre-allocation clamp for sequence lengths read from untrusted bytes.
///
/// Genuine snapshots pre-allocate exactly; a tampered length prefix
/// reserves at most this many elements up front and then fails on the
/// `read_exact` of the missing payload — it cannot request an absurd
/// allocation (which would abort the serving process instead of
/// returning `InvalidData`).
pub fn clamped_capacity(len: usize) -> usize {
    len.min(1 << 16)
}

// ----------------------------------------------------------- framing --

/// Default upper bound on one length-prefixed frame (256 MiB) — large
/// enough to carry a v3 snapshot in an admin frame, small enough that a
/// corrupted length prefix cannot request an absurd buffer.
pub const MAX_FRAME_LEN: usize = 1 << 28;

/// Writes one length-prefixed frame: a little-endian `u32` payload length
/// followed by the payload bytes. The symmetric reader is [`read_frame`];
/// the `net` crate stacks its request/response headers inside the payload.
///
/// # Errors
///
/// `InvalidData` when the payload exceeds `u32::MAX` bytes; otherwise the
/// sink's I/O errors.
pub fn write_frame(sink: &mut dyn Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| invalid_data(format!("frame payload {} exceeds u32", payload.len())))?;
    sink.write_all(&len.to_le_bytes())?;
    sink.write_all(payload)
}

/// Reads one frame written by [`write_frame`], enforcing the same
/// adversarial posture as the snapshot readers: the length prefix is
/// rejected above `max` **before** any allocation, the payload buffer
/// grows via a bounded `take` (a lying prefix cannot reserve more than
/// [`clamped_capacity`] up front), and a stream that dies mid-frame is
/// the typed [`SnapshotError::Truncated`].
///
/// Returns `Ok(None)` on a clean end-of-stream **at a frame boundary**
/// (the peer closed after a complete frame) so connection loops can
/// distinguish an orderly close from corruption.
///
/// # Errors
///
/// `InvalidData` for oversized prefixes, [`truncated`] for mid-frame
/// EOF; other reader errors pass through.
pub fn read_frame(source: &mut dyn Read, max: usize) -> io::Result<Option<Vec<u8>>> {
    let mut head = [0u8; 4];
    let mut got = 0;
    while got < head.len() {
        match source.read(&mut head[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(truncated()),
            Ok(k) => got += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(head) as usize;
    if len > max {
        return Err(invalid_data(format!("frame length {len} exceeds {max}")));
    }
    let mut payload = Vec::with_capacity(clamped_capacity(len));
    source
        .take(len as u64)
        .read_to_end(&mut payload)
        .map_err(map_truncation)?;
    if payload.len() != len {
        return Err(truncated());
    }
    Ok(Some(payload))
}

/// Thin writer over any [`Write`] emitting little-endian primitives.
pub struct WireWriter<'a> {
    sink: &'a mut dyn Write,
}

impl<'a> WireWriter<'a> {
    /// Wraps `sink`.
    pub fn new(sink: &'a mut dyn Write) -> Self {
        WireWriter { sink }
    }

    /// Writes raw bytes verbatim.
    pub fn bytes(&mut self, b: &[u8]) -> io::Result<()> {
        self.sink.write_all(b)
    }

    /// Writes a `u8`.
    pub fn u8(&mut self, x: u8) -> io::Result<()> {
        self.sink.write_all(&[x])
    }

    /// Writes a `u16` (little-endian).
    pub fn u16(&mut self, x: u16) -> io::Result<()> {
        self.sink.write_all(&x.to_le_bytes())
    }

    /// Writes a `u32` (little-endian).
    pub fn u32(&mut self, x: u32) -> io::Result<()> {
        self.sink.write_all(&x.to_le_bytes())
    }

    /// Writes a `u64` (little-endian).
    pub fn u64(&mut self, x: u64) -> io::Result<()> {
        self.sink.write_all(&x.to_le_bytes())
    }

    /// Writes a `usize` as `u64`.
    pub fn usize(&mut self, x: usize) -> io::Result<()> {
        self.u64(x as u64)
    }

    /// Writes an `f64` as its IEEE-754 bit pattern.
    pub fn f64(&mut self, x: f64) -> io::Result<()> {
        self.u64(x.to_bits())
    }

    /// Writes a `bool` as one byte (0/1).
    pub fn bool(&mut self, x: bool) -> io::Result<()> {
        self.u8(u8::from(x))
    }

    /// Writes a sequence length prefix.
    pub fn len(&mut self, n: usize) -> io::Result<()> {
        self.usize(n)
    }
}

/// Thin reader over any [`Read`] consuming little-endian primitives.
pub struct WireReader<'a> {
    source: &'a mut dyn Read,
}

impl<'a> WireReader<'a> {
    /// Wraps `source`.
    pub fn new(source: &'a mut dyn Read) -> Self {
        WireReader { source }
    }

    /// Reads exactly `N` bytes.
    fn array<const N: usize>(&mut self) -> io::Result<[u8; N]> {
        let mut buf = [0u8; N];
        self.source.read_exact(&mut buf)?;
        Ok(buf)
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> io::Result<Vec<u8>> {
        let mut buf = vec![0u8; n];
        self.source.read_exact(&mut buf)?;
        Ok(buf)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> io::Result<u8> {
        Ok(self.array::<1>()?[0])
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    /// Reads a `usize` (stored as `u64`).
    ///
    /// # Errors
    ///
    /// `InvalidData` if the value does not fit in `usize`.
    pub fn usize(&mut self) -> io::Result<usize> {
        usize::try_from(self.u64()?).map_err(|_| invalid_data("length exceeds usize"))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool` (rejecting bytes other than 0/1).
    pub fn bool(&mut self) -> io::Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(invalid_data(format!("invalid bool byte {b}"))),
        }
    }

    /// Reads a sequence length prefix, rejecting lengths above `max`
    /// (a corrupted prefix must not trigger a huge allocation).
    pub fn len(&mut self, max: usize) -> io::Result<usize> {
        let n = self.usize()?;
        if n > max {
            return Err(invalid_data(format!("sequence length {n} exceeds {max}")));
        }
        Ok(n)
    }

    /// Reads a sequence length prefix against a `u64` cap (use with
    /// [`MAX_SEQ_LEN`]): the bound is checked **before** the `u64 →
    /// usize` conversion, so on 32-bit targets an oversized length is
    /// rejected as `InvalidData` instead of the cap itself wrapping.
    pub fn len64(&mut self, max: u64) -> io::Result<usize> {
        let n = self.u64()?;
        if n > max {
            return Err(invalid_data(format!("sequence length {n} exceeds {max}")));
        }
        usize::try_from(n).map_err(|_| invalid_data("length exceeds usize"))
    }
}

/// A [`Write`] sink that discards bytes but counts them — used to compute
/// the serialized size of an artifact without materializing it.
#[derive(Debug, Default)]
pub struct CountingWriter {
    bytes: u64,
}

impl CountingWriter {
    /// A fresh counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Write for CountingWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.bytes += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        {
            let mut w = WireWriter::new(&mut buf);
            w.u8(7).unwrap();
            w.u16(300).unwrap();
            w.u32(70_000).unwrap();
            w.u64(u64::MAX - 1).unwrap();
            w.usize(42).unwrap();
            w.f64(0.25).unwrap();
            w.bool(true).unwrap();
            w.bool(false).unwrap();
            w.len(3).unwrap();
            w.bytes(b"abc").unwrap();
        }
        let mut cursor = &buf[..];
        let mut r = WireReader::new(&mut cursor);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.usize().unwrap(), 42);
        assert_eq!(r.f64().unwrap(), 0.25);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.len(10).unwrap(), 3);
        assert_eq!(r.bytes(3).unwrap(), b"abc");
        assert!(cursor.is_empty(), "all bytes consumed");
    }

    #[test]
    fn truncated_input_and_bad_values_error() {
        let mut short = &[1u8, 2][..];
        assert!(WireReader::new(&mut short).u32().is_err());
        let mut bad_bool = &[9u8][..];
        assert!(WireReader::new(&mut bad_bool).bool().is_err());
        let mut big_len = Vec::new();
        WireWriter::new(&mut big_len).u64(1 << 40).unwrap();
        let mut cursor = &big_len[..];
        assert!(WireReader::new(&mut cursor).len(1 << 20).is_err());
    }

    #[test]
    fn adversarial_length_fields_are_checked_not_wrapped() {
        // len64 bounds before the u64 → usize conversion, so a length
        // field that would overflow a 32-bit usize is InvalidData on
        // every target instead of wrapping the cap.
        for adversarial in [u64::MAX, MAX_SEQ_LEN + 1, 1 << 48] {
            let mut buf = Vec::new();
            WireWriter::new(&mut buf).u64(adversarial).unwrap();
            let mut cursor = &buf[..];
            let err = WireReader::new(&mut cursor).len64(MAX_SEQ_LEN).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{adversarial}");
        }
        let mut buf = Vec::new();
        WireWriter::new(&mut buf).u64(MAX_SEQ_LEN).unwrap();
        let mut cursor = &buf[..];
        assert_eq!(
            WireReader::new(&mut cursor).len64(MAX_SEQ_LEN).unwrap(),
            1 << 32
        );

        // seq_product: matrix shapes from adversarial headers must fail
        // with InvalidData, not wrap into a small allocation.
        assert!(seq_product(usize::MAX, 2, "m").is_err());
        assert!(seq_product(1 << 33, 1 << 33, "m").is_err());
        assert_eq!(seq_product(3, 4, "m").unwrap(), 12);
        assert_eq!(seq_product(0, usize::MAX, "m").unwrap(), 0);
    }

    #[test]
    fn truncation_errors_are_typed_and_detected_through_wrapping() {
        let err = truncated();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(is_truncated(&err));
        // map_truncation rewrites a bare UnexpectedEof …
        let eof = io::Error::new(io::ErrorKind::UnexpectedEof, "failed to fill whole buffer");
        assert!(is_truncated(&map_truncation(eof)));
        // … passes anything else through untouched …
        let other = map_truncation(invalid_data("bad magic"));
        assert!(!is_truncated(&other));
        assert_eq!(other.kind(), io::ErrorKind::InvalidData);
        // … and detection walks source chains.
        let wrapped = io::Error::new(io::ErrorKind::InvalidData, truncated());
        assert!(is_truncated(&wrapped));
    }

    #[test]
    fn frames_round_trip_and_reject_corruption() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor, 64).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor, 64).unwrap().unwrap(), b"");
        // Clean EOF at a frame boundary is None, not an error.
        assert!(read_frame(&mut cursor, 64).unwrap().is_none());
        // Mid-frame EOF is the typed truncation (7 bytes: the first
        // frame needs 9, so its payload is torn) …
        let mut torn = &buf[..7];
        let err = read_frame(&mut torn, 64).unwrap_err();
        assert!(is_truncated(&err), "{err}");
        // … a torn header too …
        let mut torn = &buf[..2];
        assert!(is_truncated(&read_frame(&mut torn, 64).unwrap_err()));
        // … and an oversized length prefix is rejected before allocation.
        let mut big = Vec::new();
        write_frame(&mut big, &[0u8; 100]).unwrap();
        let mut cursor = &big[..];
        let err = read_frame(&mut cursor, 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(!is_truncated(&err));
    }

    #[test]
    fn counting_writer_counts() {
        let mut c = CountingWriter::new();
        {
            let mut w = WireWriter::new(&mut c);
            w.u64(1).unwrap();
            w.u8(2).unwrap();
        }
        assert_eq!(c.bytes(), 9);
    }
}
