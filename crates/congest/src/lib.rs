//! A synchronous [CONGEST](https://doi.org/10.1137/1.9780898719772)-model
//! network simulator.
//!
//! The CONGEST model (Peleg, *Distributed Computing: A Locality-Sensitive
//! Approach*, SIAM 2000) is the execution model of Lenzen & Patt-Shamir,
//! *Fast Partial Distance Estimation and Applications* (PODC 2015): an
//! `n`-node network of synchronous nodes, where in every round each node
//! performs local computation, sends one message of `B ∈ Θ(log n)` bits per
//! incident edge, and receives the messages sent by its neighbors.
//!
//! This crate provides:
//!
//! * [`Topology`] — an immutable CSR view of a weighted network, with
//!   per-arc integer **delays**. Delays simulate the subdivided graphs `G_i`
//!   of the paper's Section 3 without materializing virtual nodes: a chain
//!   of `L` unit edges is exactly a rate-1/round FIFO pipeline, which is
//!   what a delay-`L` arc implements.
//! * [`Program`] / [`Runtime`] — the node-program trait and the round
//!   scheduler, with quiescence detection and full [`Metrics`] accounting
//!   (rounds, per-node/per-round message counts, message sizes).
//! * [`bfs`] — distributed BFS-tree construction (used for `O(D)`-round
//!   global coordination, as the paper assumes).
//! * [`aggregate`] — convergecast/broadcast over a BFS tree (global max for
//!   `w_max`, node counts, …).
//! * [`pipeline`] — pipelined all-to-all broadcast over a BFS tree in
//!   `O(#items + D)` rounds (used to disseminate spanner edges and to
//!   simulate skeleton-graph rounds in the paper's Section 4.3).
//!
//! # Performance model
//!
//! The round loop is the hottest code in the repository (every theorem is
//! exercised through it), and it is **allocation-free in steady state**:
//!
//! * In-flight messages live in a ring of per-round buckets. The current
//!   round's bucket is swapped into a reusable scratch vector, and each
//!   delivery is scattered into a dense per-arc slot table — `(node, port)`
//!   pairs are exactly the global arc indices of the CSR topology, and at
//!   most one message can arrive per arc per round (fixed per-arc delays +
//!   the one-message-per-port CONGEST rule). This replaces the former
//!   per-round `Vec<Vec<_>>` inbox allocation and global `sort_by_key`
//!   with a counting-style scatter/gather that yields port-sorted inboxes
//!   for free.
//! * [`Ctx`] borrows the runtime's reusable outbox and per-port send flags
//!   instead of allocating its own, and [`Ctx::inbox`] returns a slice
//!   that outlives the `Ctx` borrow so programs can relay arrivals without
//!   cloning them.
//! * Per-round message history is a bounded [`metrics::RoundWindow`]
//!   (exact totals forever, per-round detail for the most recent rounds),
//!   so multi-million-round simulations do not grow memory linearly in
//!   simulated time.
//!
//! See the repository README's "Performance" section for measured
//! throughput and `BENCH_simulator.json` for the recorded before/after
//! comparison.
//!
//! # Example
//!
//! ```
//! use congest::{Topology, Runtime, Config, Program, Ctx, Message};
//!
//! #[derive(Clone, Debug)]
//! struct Token(u32);
//! impl Message for Token {
//!     fn bit_size(&self) -> usize { 32 }
//! }
//!
//! /// Floods a token from node 0 through the network.
//! struct Flood { have: bool, sent: bool }
//! impl Program for Flood {
//!     type Msg = Token;
//!     fn round(&mut self, ctx: &mut Ctx<'_, Token>) {
//!         if !ctx.inbox().is_empty() { self.have = true; }
//!         if self.have && !self.sent {
//!             self.sent = true;
//!             ctx.broadcast(Token(7));
//!         }
//!     }
//! }
//!
//! # fn main() -> Result<(), congest::TopologyError> {
//! let topo = Topology::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1)])?;
//! let programs: Vec<Flood> = (0..4).map(|i| Flood { have: i == 0, sent: false }).collect();
//! let mut rt = Runtime::new(&topo, programs, Config::default());
//! let report = rt.run();
//! assert!(report.quiescent);
//! let (programs, metrics) = rt.into_parts();
//! assert!(programs.iter().all(|p| p.have));
//! assert_eq!(metrics.rounds, 5); // 4 flood rounds + 1 quiet round
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod arena;
pub mod bfs;
pub mod fxhash;
pub mod metrics;
pub mod model;
pub mod pipeline;
pub mod program;
pub mod runtime;
pub mod topology;
pub mod wire;

pub use fxhash::{FxBuild, FxHashMap, FxHasher};
pub use metrics::{Metrics, RoundWindow};
pub use model::{bits_for, label_record_bits, Message, NodeId, Port};
pub use program::{Arrival, Ctx, Program};
pub use runtime::{Config, RunReport, Runtime};
pub use topology::{Topology, TopologyError};
