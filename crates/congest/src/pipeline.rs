//! Pipelined all-to-all broadcast over a BFS tree.
//!
//! Broadcasting `X` items (spread over arbitrary origin nodes) to *all*
//! nodes takes `O(X + D)` rounds by pipelining over a BFS tree: items are
//! converged towards the root (one item per tree edge per round) and
//! re-broadcast down. The paper uses this primitive to disseminate the
//! skeleton spanner (Theorem 4.5) and to simulate skeleton-graph rounds
//! (Lemma 4.12: "we pipeline the communication over a BFS tree, which takes
//! `O(M_i + D)` rounds").

use std::collections::{BTreeSet, VecDeque};

use crate::bfs::BfsTree;
use crate::metrics::Metrics;
use crate::model::{Message, Port};
use crate::program::{Ctx, Program};
use crate::runtime::{Config, Runtime};
use crate::topology::Topology;

/// Node program for the pipelined broadcast.
struct PipelineProgram<M> {
    parent_port: Option<Port>,
    children: Vec<Port>,
    up_queue: VecDeque<M>,
    down_queue: VecDeque<M>,
    collected: BTreeSet<M>,
}

impl<M: Message + Ord> Program for PipelineProgram<M> {
    type Msg = M;

    fn round(&mut self, ctx: &mut Ctx<'_, M>) {
        let is_root = self.parent_port.is_none();
        for a in ctx.inbox() {
            let from_parent = Some(a.port) == self.parent_port;
            if from_parent || is_root {
                // Fresh item on its way down (at the root: an item that just
                // finished its way up); record and forward to children.
                if self.collected.insert(a.msg.clone()) || from_parent {
                    self.down_queue.push_back(a.msg.clone());
                }
            } else {
                // Item on its way up from a child.
                self.up_queue.push_back(a.msg.clone());
            }
        }
        if let Some(p) = self.parent_port {
            if let Some(item) = self.up_queue.pop_front() {
                ctx.send(p, item);
            }
        }
        if let Some(item) = self.down_queue.pop_front() {
            self.collected.insert(item.clone());
            for &c in &self.children {
                ctx.send(c, item.clone());
            }
        }
    }

    fn is_idle(&self) -> bool {
        self.up_queue.is_empty() && self.down_queue.is_empty()
    }
}

/// Broadcasts every item in `items_per_node` to all nodes, pipelined over
/// `tree`. Returns the sorted union of all items (identical at every node;
/// verified) and metrics.
///
/// Rounds are `O(X + D)` where `X` is the total number of items; the
/// returned metrics additionally charge `2 · height` rounds for the
/// termination-detection barrier a real deployment would run (a
/// convergecast of "subtree quiet" signals).
///
/// # Panics
///
/// Panics if `items_per_node.len() != topo.len()` or if the run exceeds its
/// round budget (which would indicate a simulator bug: the budget is
/// generous in `X + D`).
pub fn broadcast_all<M: Message + Ord>(
    topo: &Topology,
    tree: &BfsTree,
    items_per_node: Vec<Vec<M>>,
) -> (Vec<M>, Metrics) {
    assert_eq!(items_per_node.len(), topo.len(), "one item list per node");
    let total_items: usize = items_per_node.iter().map(Vec::len).sum();

    let programs: Vec<PipelineProgram<M>> = items_per_node
        .into_iter()
        .enumerate()
        .map(|(i, items)| {
            let is_root = i == tree.root.index();
            let mut p = PipelineProgram {
                parent_port: tree.parent_port[i],
                children: tree.children[i].clone(),
                up_queue: VecDeque::new(),
                down_queue: VecDeque::new(),
                collected: BTreeSet::new(),
            };
            if is_root {
                p.down_queue.extend(items);
            } else {
                p.up_queue.extend(items);
            }
            p
        })
        .collect();

    // Generous budget: every item crosses every tree level at most twice.
    let budget = (total_items as u64 + 2 * tree.height + 4) * 2 + 16;
    let mut rt = Runtime::new(topo, programs, Config::up_to_rounds(budget));
    let report = rt.run();
    assert!(
        report.quiescent,
        "pipelined broadcast did not finish within {budget} rounds"
    );
    let (programs, mut metrics) = rt.into_parts();

    let union: Vec<M> = programs[tree.root.index()]
        .collected
        .iter()
        .cloned()
        .collect();
    for (i, p) in programs.iter().enumerate() {
        assert_eq!(
            p.collected.len(),
            union.len(),
            "node {i} missed broadcast items"
        );
    }
    // Termination-detection barrier (up + down sweep).
    metrics.charge_rounds(2 * tree.height);
    (union, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::build_bfs;
    use crate::model::NodeId;

    impl Message for (u32, u32) {
        fn bit_size(&self) -> usize {
            64
        }
    }

    #[test]
    fn all_items_reach_all_nodes() {
        let topo =
            Topology::from_edges(6, &[(0, 1, 1), (0, 2, 1), (1, 3, 1), (2, 4, 1), (2, 5, 1)])
                .unwrap();
        let (tree, _) = build_bfs(&topo, NodeId(0));
        let items: Vec<Vec<(u32, u32)>> = (0..6u32).map(|i| vec![(i, i * 10)]).collect();
        let (union, metrics) = broadcast_all(&topo, &tree, items);
        assert_eq!(union.len(), 6);
        assert_eq!(union[3], (3, 30));
        // O(X + D): 6 items, height 2.
        assert!(metrics.rounds <= 2 * (6 + 2 * 2 + 4) + 16 + 2 * 2);
    }

    #[test]
    fn many_items_from_one_leaf_pipeline() {
        // Path graph: all items at the far end; rounds ≈ X + 2D, not X·D.
        let n = 10u32;
        let edges: Vec<(u32, u32, u64)> = (0..n - 1).map(|i| (i, i + 1, 1)).collect();
        let topo = Topology::from_edges(n as usize, &edges).unwrap();
        let (tree, _) = build_bfs(&topo, NodeId(0));
        let mut items: Vec<Vec<(u32, u32)>> = vec![vec![]; n as usize];
        items[(n - 1) as usize] = (0..50).map(|i| (i, i)).collect();
        let (union, metrics) = broadcast_all(&topo, &tree, items);
        assert_eq!(union.len(), 50);
        // 50 items over height 9: pipelining keeps it near X + 2D ( << X·D ).
        assert!(
            metrics.rounds - 2 * tree.height <= 50 + 4 * tree.height + 8,
            "rounds {} too large for pipelining",
            metrics.rounds
        );
    }

    #[test]
    fn duplicate_items_are_deduplicated() {
        let topo = Topology::from_edges(3, &[(0, 1, 1), (1, 2, 1)]).unwrap();
        let (tree, _) = build_bfs(&topo, NodeId(1));
        let items = vec![vec![(7u32, 7u32)], vec![(7, 7)], vec![(7, 7), (8, 8)]];
        let (union, _) = broadcast_all(&topo, &tree, items);
        assert_eq!(union, vec![(7, 7), (8, 8)]);
    }

    #[test]
    fn empty_broadcast_is_cheap() {
        let topo = Topology::from_edges(2, &[(0, 1, 1)]).unwrap();
        let (tree, _) = build_bfs(&topo, NodeId(0));
        let items: Vec<Vec<(u32, u32)>> = vec![vec![], vec![]];
        let (union, _) = broadcast_all(&topo, &tree, items);
        assert!(union.is_empty());
    }
}
