//! Centralized exact-distance Thorup–Zwick hierarchy (comparison
//! baseline).
//!
//! Same level structure, labels and forwarding rules as the distributed
//! `compact` scheme, but with *exact* distances everywhere — the ideal
//! the paper's approximate construction is measured against in
//! experiment E5. (Being a centralized baseline, its distance options use
//! an exact oracle; its *table sizes* are still the TZ bunches, which is
//! the quantity compared.)

use compact::levels::{level_flags, sample_levels};
use congest::{bits_for, NodeId};
use graphs::algo::{apsp, dijkstra, Apsp};
use graphs::WGraph;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use routing::RoutingScheme;
use treeroute::TreeSet;

/// Exact Thorup–Zwick baseline scheme.
#[derive(Debug)]
pub struct ExactTz {
    n: usize,
    k: u32,
    exact: Apsp,
    /// `pivots[l−1][v] = (s'_l(v), wd(v, s'_l(v)))` for `l ∈ 1..k`.
    pivots: Vec<Vec<(NodeId, u64)>>,
    /// Shortest-path trees towards each pivot, per level.
    trees: Vec<TreeSet>,
    /// Σ_l |S'_l(v)| (bunch sizes).
    bunch_sizes: Vec<usize>,
    /// First-hop matrix from exact shortest paths.
    next: Vec<Option<NodeId>>,
}

impl ExactTz {
    /// Builds the exact hierarchy with `k` levels and the given seed.
    ///
    /// # Panics
    ///
    /// Panics on disconnected inputs.
    pub fn new(g: &WGraph, k: u32, seed: u64) -> Self {
        assert!(g.is_connected(), "exact TZ requires connectivity");
        let n = g.len();
        let mut rng = SmallRng::seed_from_u64(seed);
        let (levels, _) = sample_levels(n, k, &mut rng);
        let exact = apsp(g);

        // Exact first hops (walk parents from each Dijkstra run).
        let mut next: Vec<Option<NodeId>> = vec![None; n * n];
        for u in g.nodes() {
            let sp = dijkstra(g, u);
            for v in g.nodes() {
                if u != v {
                    let mut cur = v;
                    while let Some(p) = sp.parent[cur.index()] {
                        if p == u {
                            break;
                        }
                        cur = p;
                    }
                    next[u.index() * n + v.index()] = Some(cur);
                }
            }
        }

        // Exact pivots per level.
        let mut pivots = Vec::with_capacity(k as usize - 1);
        for l in 1..k {
            let flags = level_flags(&levels, l);
            let pv: Vec<(NodeId, u64)> = g
                .nodes()
                .map(|v| {
                    g.nodes()
                        .filter(|s| flags[s.index()])
                        .map(|s| (exact.dist(v, s), s))
                        .min()
                        .map(|(d, s)| (s, d))
                        .expect("S_l nonempty")
                })
                .collect();
            pivots.push(pv);
        }

        // Bunches: |{s ∈ S_l : wd(v,s) < wd(v, S_{l+1})}| summed over l.
        let mut bunch_sizes = vec![0usize; n];
        for l in 0..k {
            let flags = level_flags(&levels, l);
            for v in g.nodes() {
                let cut = if l + 1 < k {
                    let (s, d) = pivots[l as usize][v.index()];
                    (d, s)
                } else {
                    (u64::MAX, NodeId(u32::MAX))
                };
                bunch_sizes[v.index()] += g
                    .nodes()
                    .filter(|s| flags[s.index()])
                    .filter(|&s| (exact.dist(v, s), s) < cut)
                    .count();
            }
        }

        // Exact shortest-path chains to pivots → trees (centrally built).
        let mut trees = Vec::with_capacity(k as usize - 1);
        for l in 1..k {
            let mut set = TreeSet::new();
            for v in g.nodes() {
                let (s, _) = pivots[(l - 1) as usize][v.index()];
                // Chain via exact first hops towards s.
                let mut path = vec![v];
                let mut cur = v;
                while cur != s {
                    cur = next[cur.index() * n + s.index()].expect("connected");
                    path.push(cur);
                }
                set.add_chain(&path);
            }
            set.build();
            trees.push(set);
        }

        ExactTz {
            n,
            k,
            exact,
            pivots,
            trees,
            bunch_sizes,
            next,
        }
    }

    fn first_hop(&self, x: NodeId, t: NodeId) -> Option<NodeId> {
        self.next[x.index() * self.n + t.index()]
    }
}

impl RoutingScheme for ExactTz {
    fn len(&self) -> usize {
        self.n
    }

    fn next_hop(&self, x: NodeId, dest: NodeId) -> Option<NodeId> {
        if x == dest {
            return None;
        }
        // Tree mode first (as in the distributed scheme).
        for l in 1..self.k {
            let (pivot, _) = self.pivots[(l - 1) as usize][dest.index()];
            let tree = &self.trees[(l - 1) as usize].trees[&pivot];
            if let Some(dfs) = tree.label(dest) {
                if tree.in_subtree(x, dfs) {
                    if let Some(child) = tree.next_hop_down(x, dfs) {
                        return Some(child);
                    }
                }
            }
        }
        // Exact potential: min over levels of d(x, p_l) + d(p_l, dest),
        // level 0 meaning the direct exact distance.
        let mut best: Option<(u64, NodeId)> = None;
        if let Some(h) = self.first_hop(x, dest) {
            best = Some((self.exact.dist(x, dest), h));
        }
        for l in 1..self.k {
            let (pivot, d_w) = self.pivots[(l - 1) as usize][dest.index()];
            if x == pivot {
                continue;
            }
            let est = self.exact.dist(x, pivot).saturating_add(d_w);
            if best.is_none_or(|(b, _)| est < b) {
                if let Some(h) = self.first_hop(x, pivot) {
                    best = Some((est, h));
                }
            }
        }
        best.map(|(_, h)| h)
    }

    fn estimate(&self, x: NodeId, dest: NodeId) -> u64 {
        if x == dest {
            return 0;
        }
        // What the TZ distance oracle would answer: min over levels of
        // d(x, p_l(dest)) + d(p_l(dest), dest), and d(x,dest) itself when
        // dest is in x's bunch (approximated here by the exact value,
        // which only makes the baseline stronger).
        let mut best = self.exact.dist(x, dest);
        for l in 1..self.k {
            let (pivot, d_w) = self.pivots[(l - 1) as usize][dest.index()];
            best = best.min(self.exact.dist(x, pivot).saturating_add(d_w));
        }
        best
    }

    fn label_bits(&self, v: NodeId) -> usize {
        let id = bits_for(self.n as u64);
        id + (1..self.k)
            .map(|l| {
                let (_, d) = self.pivots[(l - 1) as usize][v.index()];
                2 * id + bits_for(d + 1)
            })
            .sum::<usize>()
    }

    fn table_entries(&self, v: NodeId) -> usize {
        let tree_rows: usize = self
            .trees
            .iter()
            .flat_map(|set| set.trees.values())
            .filter_map(|t| t.children.get(&v).map(|ch| 1 + ch.len()))
            .sum();
        self.bunch_sizes[v.index()] + tree_rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::gen::{self, Weights};
    use rand::Rng;
    use routing::{evaluate, PairSelection};

    #[test]
    fn stretch_within_4k_minus_3() {
        for (k, seed) in [(2u32, 1u64), (3, 2)] {
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = gen::gnp_connected(
                26,
                0.15,
                Weights::Uniform {
                    lo: 1,
                    hi: rng.random_range(10..50),
                },
                &mut rng,
            );
            let scheme = ExactTz::new(&g, k, seed);
            let exact = apsp(&g);
            let report = evaluate(&g, &scheme, &exact, PairSelection::All);
            assert!(report.failures.is_empty(), "{:?}", report.failures);
            let bound = (4 * k - 3) as f64;
            assert!(
                report.max_stretch <= bound + 1e-9,
                "stretch {} > {bound} (k={k})",
                report.max_stretch
            );
        }
    }

    #[test]
    fn k1_is_exact() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = gen::grid(4, 5, Weights::Uniform { lo: 1, hi: 9 }, &mut rng);
        let scheme = ExactTz::new(&g, 1, 5);
        let exact = apsp(&g);
        let report = evaluate(&g, &scheme, &exact, PairSelection::All);
        assert!(report.failures.is_empty());
        assert!((report.max_stretch - 1.0).abs() < 1e-12);
    }
}
