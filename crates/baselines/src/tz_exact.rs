//! Centralized exact-distance Thorup–Zwick hierarchy (comparison
//! baseline).
//!
//! Same level structure, labels and forwarding rules as the distributed
//! `compact` scheme, but with *exact* distances everywhere — the ideal
//! the paper's approximate construction is measured against in
//! experiment E5. (Being a centralized baseline, its distance options use
//! an exact oracle; its *table sizes* are still the TZ bunches, which is
//! the quantity compared.)

use compact::levels::{level_flags, sample_levels};
use congest::{bits_for, NodeId};
use graphs::algo::{apsp_with_first_hops, Apsp};
use graphs::{Seed, WGraph};
use routing::RoutingScheme;
use treeroute::TreeSet;

/// Exact Thorup–Zwick baseline scheme.
#[derive(Debug)]
pub struct ExactTz {
    n: usize,
    k: u32,
    exact: Apsp,
    /// `pivots[l−1][v] = (s'_l(v), wd(v, s'_l(v)))` for `l ∈ 1..k`.
    pivots: Vec<Vec<(NodeId, u64)>>,
    /// Shortest-path trees towards each pivot, per level.
    trees: Vec<TreeSet>,
    /// Σ_l |S'_l(v)| (bunch sizes).
    bunch_sizes: Vec<usize>,
    /// First-hop matrix from exact shortest paths.
    next: Vec<Option<NodeId>>,
}

impl ExactTz {
    /// Builds the exact hierarchy with `k` levels and the given seed
    /// (any `u64` converts into a [`graphs::Seed`]).
    ///
    /// # Panics
    ///
    /// Panics on disconnected inputs.
    pub fn new(g: &WGraph, k: u32, seed: impl Into<Seed>) -> Self {
        assert!(g.is_connected(), "exact TZ requires connectivity");
        let n = g.len();
        let (levels, _) = sample_levels(n, k, seed.into());
        // Distances and exact first hops from one Dijkstra sweep.
        let (exact, first_hops) = apsp_with_first_hops(g);
        let next: Vec<Option<NodeId>> = first_hops
            .into_iter()
            .map(|raw| (raw != u32::MAX).then_some(NodeId(raw)))
            .collect();

        // Exact pivots per level.
        let mut pivots = Vec::with_capacity(k as usize - 1);
        for l in 1..k {
            let flags = level_flags(&levels, l);
            let pv: Vec<(NodeId, u64)> = g
                .nodes()
                .map(|v| {
                    g.nodes()
                        .filter(|s| flags[s.index()])
                        .map(|s| (exact.dist(v, s), s))
                        .min()
                        .map(|(d, s)| (s, d))
                        .expect("S_l nonempty")
                })
                .collect();
            pivots.push(pv);
        }

        // Bunches: |{s ∈ S_l : wd(v,s) < wd(v, S_{l+1})}| summed over l.
        let mut bunch_sizes = vec![0usize; n];
        for l in 0..k {
            let flags = level_flags(&levels, l);
            for v in g.nodes() {
                let cut = if l + 1 < k {
                    let (s, d) = pivots[l as usize][v.index()];
                    (d, s)
                } else {
                    (u64::MAX, NodeId(u32::MAX))
                };
                bunch_sizes[v.index()] += g
                    .nodes()
                    .filter(|s| flags[s.index()])
                    .filter(|&s| (exact.dist(v, s), s) < cut)
                    .count();
            }
        }

        // Exact shortest-path chains to pivots → trees (centrally built).
        let mut trees = Vec::with_capacity(k as usize - 1);
        for l in 1..k {
            let mut set = TreeSet::new();
            for v in g.nodes() {
                let (s, _) = pivots[(l - 1) as usize][v.index()];
                // Chain via exact first hops towards s.
                let mut path = vec![v];
                let mut cur = v;
                while cur != s {
                    cur = next[cur.index() * n + s.index()].expect("connected");
                    path.push(cur);
                }
                set.add_chain(&path);
            }
            set.build();
            trees.push(set);
        }

        ExactTz {
            n,
            k,
            exact,
            pivots,
            trees,
            bunch_sizes,
            next,
        }
    }

    fn first_hop(&self, x: NodeId, t: NodeId) -> Option<NodeId> {
        self.next[x.index() * self.n + t.index()]
    }

    /// Serializes the hierarchy's full query state (snapshot wire format;
    /// see `congest::wire`). Reloaded schemes answer queries
    /// bit-identically.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn write_into(&self, sink: &mut dyn std::io::Write) -> std::io::Result<()> {
        use congest::wire::WireWriter;
        let mut w = WireWriter::new(sink);
        w.usize(self.n)?;
        w.u32(self.k)?;
        self.exact.write_into(sink)?;
        let mut w = WireWriter::new(sink);
        w.len(self.pivots.len())?;
        for level in &self.pivots {
            w.len(level.len())?;
            for &(s, d) in level {
                w.u32(s.0)?;
                w.u64(d)?;
            }
        }
        let mut w = WireWriter::new(sink);
        w.len(self.trees.len())?;
        for set in &self.trees {
            set.write_into(sink)?;
        }
        let mut w = WireWriter::new(sink);
        w.len(self.bunch_sizes.len())?;
        for &b in &self.bunch_sizes {
            w.usize(b)?;
        }
        for &nx in &self.next {
            w.u32(nx.map_or(u32::MAX, |v| v.0))?;
        }
        Ok(())
    }

    /// Deserializes a hierarchy written by [`ExactTz::write_into`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed bytes.
    pub fn read_from(source: &mut dyn std::io::Read) -> std::io::Result<Self> {
        use congest::wire::{clamped_capacity, invalid_data, WireReader, MAX_SNAPSHOT_NODES};
        let mut r = WireReader::new(source);
        let n = r.usize()?;
        if n > MAX_SNAPSHOT_NODES {
            return Err(invalid_data(format!("ExactTz snapshot claims {n} nodes")));
        }
        let k = r.u32()?;
        if k == 0 {
            return Err(invalid_data("ExactTz snapshot with k = 0"));
        }
        let exact = Apsp::read_from(source)?;
        if exact.len() != n {
            return Err(invalid_data("ExactTz APSP size mismatch"));
        }
        // Shape checks: queries index pivots[l-1][v] for l in 1..k and
        // the n×n first-hop matrix, so every level must cover all n
        // nodes — a short table must fail here, not at query time.
        let mut r = WireReader::new(source);
        let np = r.len(n)?;
        if np != (k - 1) as usize {
            return Err(invalid_data("ExactTz pivot level count mismatch"));
        }
        let mut pivots = Vec::with_capacity(clamped_capacity(np));
        for _ in 0..np {
            let len = r.len(n)?;
            if len != n {
                return Err(invalid_data("ExactTz pivot level shorter than n"));
            }
            let mut level = Vec::with_capacity(clamped_capacity(len));
            for _ in 0..len {
                let s = NodeId(r.u32()?);
                let d = r.u64()?;
                level.push((s, d));
            }
            pivots.push(level);
        }
        let nt = r.len(n)?;
        if nt != np {
            return Err(invalid_data("ExactTz tree set count mismatch"));
        }
        let mut trees = Vec::with_capacity(clamped_capacity(nt));
        for _ in 0..nt {
            trees.push(TreeSet::read_from(source)?);
        }
        let mut r = WireReader::new(source);
        let nb = r.len(n)?;
        if nb != n {
            return Err(invalid_data("ExactTz bunch table shorter than n"));
        }
        let mut bunch_sizes = Vec::with_capacity(clamped_capacity(nb));
        for _ in 0..nb {
            bunch_sizes.push(r.usize()?);
        }
        let cells = n
            .checked_mul(n)
            .ok_or_else(|| invalid_data("ExactTz size overflow"))?;
        let mut next = Vec::with_capacity(clamped_capacity(cells));
        for _ in 0..cells {
            let raw = r.u32()?;
            next.push(if raw == u32::MAX {
                None
            } else if (raw as usize) < n {
                Some(NodeId(raw))
            } else {
                return Err(invalid_data(format!("first hop {raw} out of range")));
            });
        }
        Ok(ExactTz {
            n,
            k,
            exact,
            pivots,
            trees,
            bunch_sizes,
            next,
        })
    }

    /// Emits the hierarchy into a v3 arena: `[n, k]` meta, the APSP
    /// matrices and the first-hop matrix as typed sections, pivots as
    /// flat per-level arrays, trees as an embedded v2 stream.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the tree stream.
    pub fn write_arena(&self, a: &mut congest::arena::ArenaWriter) -> std::io::Result<()> {
        a.u64s(&[self.n as u64, u64::from(self.k)]);
        self.exact.write_arena(a);
        let piv_s: Vec<u32> = self
            .pivots
            .iter()
            .flat_map(|level| level.iter().map(|&(s, _)| s.0))
            .collect();
        let piv_d: Vec<u64> = self
            .pivots
            .iter()
            .flat_map(|level| level.iter().map(|&(_, d)| d))
            .collect();
        a.u32s(&piv_s);
        a.u64s(&piv_d);
        a.stream(|sink| {
            let mut w = congest::wire::WireWriter::new(sink);
            w.len(self.trees.len())?;
            for set in &self.trees {
                set.write_into(sink)?;
            }
            Ok(())
        })?;
        let bunches: Vec<u64> = self.bunch_sizes.iter().map(|&b| b as u64).collect();
        a.u64s(&bunches);
        let next: Vec<u32> = self
            .next
            .iter()
            .map(|nx| nx.map_or(u32::MAX, |v| v.0))
            .collect();
        a.u32s(&next);
        Ok(())
    }

    /// Reads what [`ExactTz::write_arena`] wrote, with the same shape
    /// and range checks as [`ExactTz::read_from`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed sections.
    pub fn read_arena(c: &mut congest::arena::ArenaCursor<'_>) -> std::io::Result<Self> {
        use congest::wire::{invalid_data, MAX_SNAPSHOT_NODES};
        let meta = c.u64s()?;
        let [n, k] = meta[..] else {
            return Err(invalid_data("ExactTz meta section misshapen"));
        };
        let n = usize::try_from(n).map_err(|_| invalid_data("ExactTz n overflow"))?;
        if n > MAX_SNAPSHOT_NODES {
            return Err(invalid_data(format!("ExactTz snapshot claims {n} nodes")));
        }
        let k = u32::try_from(k).map_err(|_| invalid_data("ExactTz k overflow"))?;
        if k == 0 {
            return Err(invalid_data("ExactTz snapshot with k = 0"));
        }
        let exact = Apsp::read_arena(c)?;
        if exact.len() != n {
            return Err(invalid_data("ExactTz APSP size mismatch"));
        }
        let piv_s = c.u32s()?;
        let piv_d = c.u64s()?;
        let np = (k - 1) as usize;
        let piv_total = congest::wire::seq_product(n, np, "ExactTz pivots")?;
        if piv_s.len() != piv_total || piv_d.len() != piv_total {
            return Err(invalid_data("ExactTz pivot sections disagree on length"));
        }
        let pivots: Vec<Vec<(NodeId, u64)>> = (0..np)
            .map(|l| {
                (l * n..(l + 1) * n)
                    .map(|i| (NodeId(piv_s[i]), piv_d[i]))
                    .collect()
            })
            .collect();
        let mut tree_bytes = c.bytes()?;
        let nt = congest::wire::WireReader::new(&mut tree_bytes).len(n)?;
        if nt != np {
            return Err(invalid_data("ExactTz tree set count mismatch"));
        }
        let mut trees = Vec::with_capacity(nt);
        for _ in 0..nt {
            trees.push(TreeSet::read_from(&mut tree_bytes)?);
        }
        let bunch_sizes: Vec<usize> = c
            .u64s()?
            .into_iter()
            .map(|b| usize::try_from(b).map_err(|_| invalid_data("bunch size overflow")))
            .collect::<std::io::Result<_>>()?;
        if bunch_sizes.len() != n {
            return Err(invalid_data("ExactTz bunch table shorter than n"));
        }
        let cells = congest::wire::seq_product(n, n, "ExactTz")?;
        let raw_next = c.u32s()?;
        if raw_next.len() != cells {
            return Err(invalid_data("ExactTz first-hop cell count mismatch"));
        }
        let next: Vec<Option<NodeId>> = raw_next
            .into_iter()
            .map(|raw| {
                if raw == u32::MAX {
                    Ok(None)
                } else if (raw as usize) < n {
                    Ok(Some(NodeId(raw)))
                } else {
                    Err(invalid_data(format!("first hop {raw} out of range")))
                }
            })
            .collect::<std::io::Result<_>>()?;
        Ok(ExactTz {
            n,
            k,
            exact,
            pivots,
            trees,
            bunch_sizes,
            next,
        })
    }
}

impl RoutingScheme for ExactTz {
    fn len(&self) -> usize {
        self.n
    }

    fn next_hop(&self, x: NodeId, dest: NodeId) -> Option<NodeId> {
        if x == dest {
            return None;
        }
        // Tree mode first (as in the distributed scheme).
        for l in 1..self.k {
            let (pivot, _) = self.pivots[(l - 1) as usize][dest.index()];
            let tree = &self.trees[(l - 1) as usize].trees[&pivot];
            if let Some(dfs) = tree.label(dest) {
                if tree.in_subtree(x, dfs) {
                    if let Some(child) = tree.next_hop_down(x, dfs) {
                        return Some(child);
                    }
                }
            }
        }
        // Exact potential: min over levels of d(x, p_l) + d(p_l, dest),
        // level 0 meaning the direct exact distance.
        let mut best: Option<(u64, NodeId)> = None;
        if let Some(h) = self.first_hop(x, dest) {
            best = Some((self.exact.dist(x, dest), h));
        }
        for l in 1..self.k {
            let (pivot, d_w) = self.pivots[(l - 1) as usize][dest.index()];
            if x == pivot {
                continue;
            }
            let est = self.exact.dist(x, pivot).saturating_add(d_w);
            if best.is_none_or(|(b, _)| est < b) {
                if let Some(h) = self.first_hop(x, pivot) {
                    best = Some((est, h));
                }
            }
        }
        best.map(|(_, h)| h)
    }

    fn estimate(&self, x: NodeId, dest: NodeId) -> u64 {
        if x == dest {
            return 0;
        }
        // What the TZ distance oracle would answer: min over levels of
        // d(x, p_l(dest)) + d(p_l(dest), dest), and d(x,dest) itself when
        // dest is in x's bunch (approximated here by the exact value,
        // which only makes the baseline stronger).
        let mut best = self.exact.dist(x, dest);
        for l in 1..self.k {
            let (pivot, d_w) = self.pivots[(l - 1) as usize][dest.index()];
            best = best.min(self.exact.dist(x, pivot).saturating_add(d_w));
        }
        best
    }

    fn label_bits(&self, v: NodeId) -> usize {
        let id = bits_for(self.n as u64);
        id + (1..self.k)
            .map(|l| {
                let (_, d) = self.pivots[(l - 1) as usize][v.index()];
                2 * id + bits_for(d + 1)
            })
            .sum::<usize>()
    }

    fn table_entries(&self, v: NodeId) -> usize {
        let tree_rows: usize = self
            .trees
            .iter()
            .flat_map(|set| set.trees.values())
            .filter_map(|t| t.children.get(&v).map(|ch| 1 + ch.len()))
            .sum();
        self.bunch_sizes[v.index()] + tree_rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::algo::apsp;
    use graphs::gen::{self, Weights};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use routing::{evaluate, PairSelection};

    #[test]
    fn stretch_within_4k_minus_3() {
        for (k, seed) in [(2u32, 1u64), (3, 2)] {
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = gen::gnp_connected(
                26,
                0.15,
                Weights::Uniform {
                    lo: 1,
                    hi: rng.random_range(10..50),
                },
                &mut rng,
            );
            let scheme = ExactTz::new(&g, k, seed);
            let exact = apsp(&g);
            let report = evaluate(&g, &scheme, &exact, PairSelection::All);
            assert!(report.failures.is_empty(), "{:?}", report.failures);
            let bound = (4 * k - 3) as f64;
            assert!(
                report.max_stretch <= bound + 1e-9,
                "stretch {} > {bound} (k={k})",
                report.max_stretch
            );
        }
    }

    #[test]
    fn snapshot_round_trip_is_query_identical() {
        let mut rng = SmallRng::seed_from_u64(8);
        let g = gen::gnp_connected(22, 0.2, Weights::Uniform { lo: 1, hi: 25 }, &mut rng);
        let scheme = ExactTz::new(&g, 3, 8);
        let mut buf = Vec::new();
        scheme.write_into(&mut buf).unwrap();
        let back = ExactTz::read_from(&mut &buf[..]).unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(scheme.estimate(u, v), back.estimate(u, v), "({u},{v})");
                assert_eq!(scheme.next_hop(u, v), back.next_hop(u, v), "({u},{v})");
            }
            assert_eq!(scheme.label_bits(u), back.label_bits(u));
            assert_eq!(scheme.table_entries(u), back.table_entries(u));
        }
        let mut buf2 = Vec::new();
        back.write_into(&mut buf2).unwrap();
        assert_eq!(buf, buf2);
    }

    #[test]
    fn k1_is_exact() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = gen::grid(4, 5, Weights::Uniform { lo: 1, hi: 9 }, &mut rng);
        let scheme = ExactTz::new(&g, 1, 5);
        let exact = apsp(&g);
        let report = evaluate(&g, &scheme, &exact, PairSelection::All);
        assert!(report.failures.is_empty());
        assert!((report.max_stretch - 1.0).abs() < 1e-12);
    }
}
