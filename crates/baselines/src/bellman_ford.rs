//! Pipelined distributed Bellman–Ford (distance-vector / RIP-style) APSP.

use congest::{bits_for, Config, Ctx, Message, Metrics, NodeId, Program, Runtime, Topology};
use graphs::{WGraph, INF};
use std::collections::{BTreeSet, HashMap};

/// A distance-vector announcement.
#[derive(Clone, Debug)]
pub struct BfMsg {
    /// The source this distance refers to.
    pub src: NodeId,
    /// The announcing node's current distance to `src`.
    pub dist: u64,
}

impl Message for BfMsg {
    fn bit_size(&self) -> usize {
        bits_for(u64::from(self.src.0) + 1) + bits_for(self.dist + 1)
    }
}

/// Node state: a full distance vector, announced one improvement per round
/// (smallest first — the same pipelining discipline as source detection,
/// but with no horizon and no list-size cap, which is exactly why it needs
/// `Θ(n²)` rounds in the worst case).
struct BfProgram {
    dist: HashMap<NodeId, u64>,
    pending: BTreeSet<(u64, NodeId)>,
    announced: HashMap<NodeId, u64>,
}

impl Program for BfProgram {
    type Msg = BfMsg;

    fn round(&mut self, ctx: &mut Ctx<'_, BfMsg>) {
        if ctx.round() == 0 {
            let me = ctx.node();
            self.dist.insert(me, 0);
            self.pending.insert((0, me));
        }
        let arrivals: Vec<(u64, BfMsg)> = ctx
            .inbox()
            .iter()
            .map(|a| (ctx.weight(a.port), a.msg.clone()))
            .collect();
        for (w, msg) in arrivals {
            let d = msg.dist.saturating_add(w);
            let cur = self.dist.get(&msg.src).copied().unwrap_or(INF);
            if d < cur {
                if cur != INF {
                    self.pending.remove(&(cur, msg.src));
                }
                self.dist.insert(msg.src, d);
                if self.announced.get(&msg.src).is_none_or(|&a| d < a) {
                    self.pending.insert((d, msg.src));
                }
            }
        }
        if let Some(&(d, s)) = self.pending.iter().next() {
            self.pending.remove(&(d, s));
            self.announced.insert(s, d);
            ctx.broadcast(BfMsg { src: s, dist: d });
        }
    }

    fn is_idle(&self) -> bool {
        self.pending.is_empty()
    }
}

/// Result of the Bellman–Ford baseline.
#[derive(Debug)]
pub struct BfResult {
    n: usize,
    dist: Vec<u64>,
    /// Simulator metrics (`rounds` is the headline number: `Θ(n²)` worst
    /// case, versus the paper's `Õ(n)`).
    pub metrics: Metrics,
}

impl BfResult {
    /// Exact distance `wd(u, v)`.
    pub fn dist(&self, u: NodeId, v: NodeId) -> u64 {
        self.dist[u.index() * self.n + v.index()]
    }
}

/// Runs the pipelined distance-vector algorithm to completion (exact
/// APSP).
///
/// # Panics
///
/// Panics if the graph is disconnected or the run fails to quiesce within
/// a `16·n² + 64` round budget (it always does: at most `n` improvements
/// per source per node).
pub fn bellman_ford_apsp(g: &WGraph) -> BfResult {
    let topo: Topology = g.to_topology();
    assert!(topo.is_connected(), "Bellman-Ford requires connectivity");
    let n = g.len();
    let programs: Vec<BfProgram> = (0..n)
        .map(|_| BfProgram {
            dist: HashMap::new(),
            pending: BTreeSet::new(),
            announced: HashMap::new(),
        })
        .collect();
    let budget = 16 * (n as u64) * (n as u64) + 64;
    let mut rt = Runtime::new(&topo, programs, Config::up_to_rounds(budget));
    let report = rt.run();
    assert!(report.quiescent, "Bellman-Ford did not converge");
    let (programs, metrics) = rt.into_parts();
    let mut dist = vec![INF; n * n];
    for (i, p) in programs.into_iter().enumerate() {
        for (s, d) in p.dist {
            dist[i * n + s.index()] = d;
        }
    }
    BfResult { n, dist, metrics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::algo::apsp;
    use graphs::gen::{self, Weights};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn matches_dijkstra_on_random_graphs() {
        for seed in 0..3 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = gen::gnp_connected(18, 0.2, Weights::Uniform { lo: 1, hi: 50 }, &mut rng);
            let bf = bellman_ford_apsp(&g);
            let exact = apsp(&g);
            for u in g.nodes() {
                for v in g.nodes() {
                    assert_eq!(bf.dist(u, v), exact.dist(u, v), "pair ({u}, {v})");
                }
            }
        }
    }

    #[test]
    fn rounds_grow_superlinearly_on_paths() {
        // Each node must announce ~n sources one per round: Θ(n²) total
        // work pipelines into Ω(n) rounds even here; on adversarial
        // weighted graphs it degrades further. We check it is ≥ n.
        let mut rng = SmallRng::seed_from_u64(9);
        let g = gen::path(24, Weights::Uniform { lo: 1, hi: 9 }, &mut rng);
        let bf = bellman_ford_apsp(&g);
        assert!(bf.metrics.rounds >= 24);
    }
}
