//! Baseline distributed algorithms the paper positions itself against
//! (Section 1, "Background"):
//!
//! * [`bellman_ford_apsp`] — the RIP-style pipelined distance-vector
//!   algorithm: exact APSP, `Θ(n²)` rounds in the worst case and
//!   `Θ(n log n)` bits of state per node.
//! * [`flooding_apsp`] — the OSPF-style link-state algorithm: collect the
//!   complete topology at each node by flooding (`Θ(m + D)` rounds,
//!   `Θ(m)` storage), then run Dijkstra locally. Exact.
//! * [`ExactTz`] — a *centralized* exact-distance Thorup–Zwick hierarchy
//!   with the same label/table model as the `compact` crate: the stretch
//!   and table-size reference point for experiment E5 (what the
//!   distributed approximate construction loses versus exact distances).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bellman_ford;
mod flooding;
mod tz_exact;

pub use bellman_ford::{bellman_ford_apsp, BfResult};
pub use flooding::{flooding_apsp, FloodResult};
pub use tz_exact::ExactTz;
