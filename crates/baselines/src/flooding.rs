//! Link-state (OSPF-style) baseline: flood the topology, solve locally.

use congest::{bits_for, Config, Ctx, Message, Metrics, NodeId, Program, Runtime};
use graphs::algo::{apsp_with_first_hops, Apsp};
use graphs::WGraph;
use std::collections::{BTreeSet, VecDeque};

/// A link-state advertisement: one edge.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Lsa(pub u32, pub u32, pub u64);

impl Message for Lsa {
    fn bit_size(&self) -> usize {
        bits_for(u64::from(self.0) + 1) + bits_for(u64::from(self.1) + 1) + bits_for(self.2 + 1)
    }
}

struct FloodProgram {
    known: BTreeSet<Lsa>,
    queue: VecDeque<Lsa>,
}

impl Program for FloodProgram {
    type Msg = Lsa;

    fn round(&mut self, ctx: &mut Ctx<'_, Lsa>) {
        if ctx.round() == 0 {
            let me = ctx.node();
            for (_, u, w, _) in ctx_arcs(ctx) {
                let lsa = Lsa(me.0.min(u.0), me.0.max(u.0), w);
                if self.known.insert(lsa.clone()) {
                    self.queue.push_back(lsa);
                }
            }
        }
        let arrivals: Vec<Lsa> = ctx.inbox().iter().map(|a| a.msg.clone()).collect();
        for lsa in arrivals {
            if self.known.insert(lsa.clone()) {
                self.queue.push_back(lsa);
            }
        }
        if let Some(lsa) = self.queue.pop_front() {
            ctx.broadcast(lsa);
        }
    }

    fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }
}

fn ctx_arcs(ctx: &Ctx<'_, Lsa>) -> Vec<(u32, NodeId, u64, u64)> {
    (0..ctx.degree() as u32)
        .map(|p| (p, ctx.neighbor(p), ctx.weight(p), ctx.delay(p)))
        .collect()
}

/// Result of the link-state baseline.
#[derive(Debug)]
pub struct FloodResult {
    /// Exact APSP computed locally from the collected topology.
    pub apsp: Apsp,
    /// Exact first hops (`first_hops[u·n + v]`; `u32::MAX` on the
    /// diagonal), from the same local Dijkstra sweep — what an OSPF node
    /// actually installs in its forwarding table.
    pub first_hops: Vec<u32>,
    /// Simulator metrics (`rounds ∈ Θ(m + D)`; storage per node `Θ(m)`).
    pub metrics: Metrics,
    /// Link-state database size per node (edges stored) — the `Θ(m)`
    /// storage cost the paper contrasts with compact tables.
    pub lsdb_edges: usize,
}

/// Runs topology flooding to completion, then local Dijkstra (exact APSP).
///
/// # Panics
///
/// Panics if the graph is disconnected or some node missed an edge (a
/// protocol bug).
pub fn flooding_apsp(g: &WGraph) -> FloodResult {
    let topo = g.to_topology();
    assert!(topo.is_connected(), "flooding requires connectivity");
    let n = g.len();
    let programs: Vec<FloodProgram> = (0..n)
        .map(|_| FloodProgram {
            known: BTreeSet::new(),
            queue: VecDeque::new(),
        })
        .collect();
    let budget = 4 * (g.num_edges() as u64 + n as u64) + 64;
    let mut rt = Runtime::new(&topo, programs, Config::up_to_rounds(budget));
    let report = rt.run();
    assert!(report.quiescent, "flooding did not complete");
    let (programs, metrics) = rt.into_parts();
    for (i, p) in programs.iter().enumerate() {
        assert_eq!(
            p.known.len(),
            g.num_edges(),
            "node {i} missed link-state advertisements"
        );
    }
    let (apsp, first_hops) = apsp_with_first_hops(g);
    FloodResult {
        apsp,
        first_hops,
        metrics,
        lsdb_edges: g.num_edges(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::algo::apsp;
    use graphs::gen::{self, Weights};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn collects_whole_topology() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = gen::gnp_connected(20, 0.2, Weights::Uniform { lo: 1, hi: 9 }, &mut rng);
        let r = flooding_apsp(&g);
        assert_eq!(r.lsdb_edges, g.num_edges());
        // Exactness comes from local Dijkstra on the full topology.
        let exact = apsp(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(r.apsp.dist(u, v), exact.dist(u, v));
            }
        }
    }

    #[test]
    fn rounds_scale_with_edge_count() {
        let mut rng = SmallRng::seed_from_u64(2);
        let sparse = gen::path(30, Weights::Unit, &mut rng);
        let dense = gen::complete(30, Weights::Unit, &mut rng);
        let rs = flooding_apsp(&sparse).metrics.rounds;
        let rd = flooding_apsp(&dense).metrics.rounds;
        assert!(rd > rs, "dense graph should flood longer: {rd} vs {rs}");
        // Θ(m + D): the dense graph has 435 edges but D=1.
        assert!(rd as usize >= dense.num_edges() / 30);
    }
}
