//! Unweighted `(S, h, σ)` source detection (Lenzen & Peleg, PODC 2013) as a
//! CONGEST program.
//!
//! This is the building block of the paper's partial distance estimation:
//! given a source set `S`, a hop horizon `h` and a list size `σ`, every
//! node must learn the `σ` lexicographically smallest `(distance, source)`
//! pairs among sources within `h` hops. The pipelined algorithm solves this
//! in `h + σ` rounds, broadcasting at most one pair per node per round, and
//! (Lemma 3.4 of the PODC 2015 paper) each node broadcasts `O(σ²)`
//! messages in total.
//!
//! The implementation is *delay-aware*: run on a topology whose arcs carry
//! integer delays (the subdivided graphs `G_i` of Section 3), "hop
//! distance" means delay-sum distance, which is exactly the hop distance in
//! the virtual subdivided graph. On unit delays it is the plain unweighted
//! algorithm.
//!
//! # Example
//!
//! ```
//! use congest::{NodeId, Topology};
//! use sourcedetect::{run_detection, DetectParams};
//!
//! # fn main() -> Result<(), congest::TopologyError> {
//! // Path 0-1-2-3; sources {0, 3}.
//! let topo = Topology::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1)])?;
//! let sources = vec![true, false, false, true];
//! let out = run_detection(
//!     &topo,
//!     &sources,
//!     &[false; 4],
//!     &DetectParams { h: 3, sigma: 2, msg_cap: None, exact_rounds: false },
//! );
//! assert_eq!(out.lists[1].len(), 2);
//! assert_eq!(out.lists[1][0].src, NodeId(0));
//! assert_eq!(out.lists[1][0].dist, 1);
//! assert_eq!(out.lists[1][1].src, NodeId(3));
//! assert_eq!(out.lists[1][1].dist, 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod native;
mod program;
mod reference;
mod runner;

pub use native::native_detection;
pub use program::{SdEntry, SdMsg, SdProgram, SourceSpace};
pub use reference::delayed_detection_reference;
pub use runner::{run_detection, DetectParams, DetectionOutput, RouteEntry};
