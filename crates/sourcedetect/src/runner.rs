//! Driver for a detection run.

use crate::program::{SdEntry, SdProgram, SourceSpace};
use congest::{Config, Metrics, NodeId, Port, Runtime, Topology};
use std::sync::Arc;

/// Parameters of an `(S, h, σ)`-detection run.
#[derive(Clone, Debug)]
pub struct DetectParams {
    /// Hop horizon `h` (in delay-hops of the given topology).
    pub h: u64,
    /// List size σ.
    pub sigma: usize,
    /// Optional per-node message cap (Lemma 3.4 allows `O(σ²)`).
    pub msg_cap: Option<u64>,
    /// Run exactly `h + σ + 1` rounds (the theoretical budget) instead of
    /// stopping at quiescence. Used when validating the round bound.
    pub exact_rounds: bool,
}

/// A next-hop record: the best received distance and the arrival port.
pub type RouteEntry = (u64, Port);

/// Result of a detection run.
#[derive(Debug)]
pub struct DetectionOutput {
    /// Per-node top-σ lists, sorted lexicographically.
    pub lists: Vec<Vec<SdEntry>>,
    /// Per-node routing archive: best `(dist, port)` per source ever
    /// received, as `(source, dist, port)` triples sorted by source id
    /// (see DESIGN.md on archives).
    pub routes: Vec<Vec<(NodeId, u64, Port)>>,
    /// Per-node broadcast counts (for the Lemma 3.4 experiment).
    pub msgs_per_node: Vec<u64>,
    /// Simulator metrics.
    pub metrics: Metrics,
}

impl DetectionOutput {
    /// The routing archive entry of node `v` for source `src`, if any
    /// (binary search over the sorted per-node triples).
    pub fn route(&self, v: NodeId, src: NodeId) -> Option<RouteEntry> {
        let entries = &self.routes[v.index()];
        entries
            .binary_search_by_key(&src, |&(s, _, _)| s)
            .ok()
            .map(|i| (entries[i].1, entries[i].2))
    }
}

/// Runs `(S, h, σ)`-detection on `topo`.
///
/// `sources[v]` marks membership in `S`; `tags[v]` is the auxiliary bit
/// attached to `v`'s announcements (e.g. "also in `S_{l+1}`").
///
/// The round budget is the theoretical `h + σ + 1` (one extra round for the
/// round-0 initialization); by default the run stops earlier at
/// quiescence.
///
/// # Panics
///
/// Panics if the flag slices don't have one entry per node.
pub fn run_detection(
    topo: &Topology,
    sources: &[bool],
    tags: &[bool],
    params: &DetectParams,
) -> DetectionOutput {
    assert_eq!(sources.len(), topo.len(), "one source flag per node");
    assert_eq!(tags.len(), topo.len(), "one tag flag per node");

    let space = Arc::new(SourceSpace::new(sources, tags));
    let programs: Vec<SdProgram> = topo
        .nodes()
        .map(|v| {
            let src = sources[v.index()].then_some(tags[v.index()]);
            SdProgram::new(
                Arc::clone(&space),
                src,
                params.h,
                params.sigma,
                params.msg_cap,
            )
        })
        .collect();

    let budget = params.h + params.sigma as u64 + 1;
    let cfg = if params.exact_rounds {
        Config::exact_rounds(budget)
    } else {
        Config::up_to_rounds(budget)
    };
    let mut rt = Runtime::new(topo, programs, cfg);
    rt.run();
    let (programs, metrics) = rt.into_parts();

    let mut lists = Vec::with_capacity(topo.len());
    let mut routes = Vec::with_capacity(topo.len());
    let mut msgs_per_node = Vec::with_capacity(topo.len());
    for p in programs {
        lists.push(p.list());
        msgs_per_node.push(p.msgs_sent());
        routes.push(p.routes());
    }
    DetectionOutput {
        lists,
        routes,
        msgs_per_node,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::delayed_detection_reference;

    fn params(h: u64, sigma: usize) -> DetectParams {
        DetectParams {
            h,
            sigma,
            msg_cap: None,
            exact_rounds: false,
        }
    }

    fn check_against_reference(topo: &Topology, sources: &[bool], h: u64, sigma: usize) {
        let out = run_detection(topo, sources, &vec![false; topo.len()], &params(h, sigma));
        let reference = delayed_detection_reference(topo, sources, h, sigma);
        for v in topo.nodes() {
            let got: Vec<(u64, NodeId)> = out.lists[v.index()]
                .iter()
                .map(|e| (e.dist, e.src))
                .collect();
            assert_eq!(
                got,
                reference[v.index()],
                "node {v} list mismatch (h={h}, sigma={sigma})"
            );
        }
    }

    #[test]
    fn path_all_horizons() {
        let topo =
            Topology::from_edges(6, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 4, 1), (4, 5, 1)])
                .unwrap();
        let sources = [true, false, true, false, false, true];
        for h in 1..=6 {
            for sigma in 1..=3 {
                check_against_reference(&topo, &sources, h, sigma);
            }
        }
    }

    #[test]
    fn grid_with_delays() {
        // 3x3 grid with mixed delays.
        let mut edges = Vec::new();
        let id = |r: u32, c: u32| r * 3 + c;
        for r in 0..3u32 {
            for c in 0..3u32 {
                if c + 1 < 3 {
                    edges.push((id(r, c), id(r, c + 1), 1 + u64::from(r)));
                }
                if r + 1 < 3 {
                    edges.push((id(r, c), id(r + 1, c), 2));
                }
            }
        }
        let topo = Topology::from_edges(9, &edges).unwrap().with_delays(|w| w);
        let sources = [true, false, false, false, true, false, false, false, true];
        for h in [2, 4, 8] {
            for sigma in [1, 2, 3] {
                check_against_reference(&topo, &sources, h, sigma);
            }
        }
    }

    #[test]
    fn finishes_within_theory_budget() {
        // Theorem ([10]): h + σ rounds suffice. Run with the exact budget
        // and verify correctness anyway (quiescence may come earlier).
        let topo = Topology::from_edges(
            8,
            &[
                (0, 1, 1),
                (1, 2, 1),
                (2, 3, 1),
                (3, 4, 1),
                (4, 5, 1),
                (5, 6, 1),
                (6, 7, 1),
                (0, 7, 1),
            ],
        )
        .unwrap();
        let sources = [true, true, true, true, false, false, false, false];
        let h = 8;
        let sigma = 4;
        let out = run_detection(
            &topo,
            &sources,
            &[false; 8],
            &DetectParams {
                h,
                sigma,
                msg_cap: None,
                exact_rounds: true,
            },
        );
        let reference = delayed_detection_reference(&topo, &sources, h, sigma);
        for v in topo.nodes() {
            let got: Vec<(u64, NodeId)> = out.lists[v.index()]
                .iter()
                .map(|e| (e.dist, e.src))
                .collect();
            assert_eq!(got, reference[v.index()]);
        }
        assert_eq!(out.metrics.rounds, h + sigma as u64 + 1);
    }

    #[test]
    fn tags_are_carried() {
        let topo = Topology::from_edges(3, &[(0, 1, 1), (1, 2, 1)]).unwrap();
        let out = run_detection(
            &topo,
            &[true, false, true],
            &[true, false, false],
            &params(5, 5),
        );
        let l1 = &out.lists[1];
        assert_eq!(l1.len(), 2);
        let tag_of = |src: u32| l1.iter().find(|e| e.src == NodeId(src)).unwrap().tag;
        assert!(tag_of(0));
        assert!(!tag_of(2));
    }

    #[test]
    fn routes_point_backwards_along_paths() {
        let topo = Topology::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1)]).unwrap();
        let out = run_detection(
            &topo,
            &[true, false, false, false],
            &[false; 4],
            &params(4, 2),
        );
        // Node 3's route for source 0 must point at node 2.
        let (d, port) = out.route(NodeId(3), NodeId(0)).unwrap();
        assert_eq!(d, 3);
        assert_eq!(topo.neighbor(NodeId(3), port), NodeId(2));
        // And node 2's route for source 0 must have distance 2: strictly
        // decreasing along the chain (the greedy-forwarding invariant).
        let (d2, _) = out.route(NodeId(2), NodeId(0)).unwrap();
        assert_eq!(d2, 2);
        // Archives are sorted by source id (binary-searchable).
        for v in topo.nodes() {
            let r = &out.routes[v.index()];
            assert!(r.windows(2).all(|w| w[0].0 < w[1].0));
        }
    }

    #[test]
    fn message_cap_limits_broadcasts() {
        let topo = Topology::from_edges(5, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 4, 1)]).unwrap();
        let sources = [true, true, true, true, true];
        let capped = run_detection(
            &topo,
            &sources,
            &[false; 5],
            &DetectParams {
                h: 5,
                sigma: 5,
                msg_cap: Some(2),
                exact_rounds: false,
            },
        );
        assert!(capped.msgs_per_node.iter().all(|&m| m <= 2));
    }
}
