//! Centralized reference solution for detection on delayed topologies.

use congest::{NodeId, Topology};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Exact solution of `(S, h, σ)`-detection on the *virtual subdivided
/// graph* represented by `topo`'s delays: for every node, the σ smallest
/// `(delay-distance, source)` pairs among sources within delay-distance
/// `h`.
///
/// Used as ground truth for [`crate::run_detection`]. `O(|S| · m log n)`.
pub fn delayed_detection_reference(
    topo: &Topology,
    sources: &[bool],
    h: u64,
    sigma: usize,
) -> Vec<Vec<(u64, NodeId)>> {
    assert_eq!(sources.len(), topo.len(), "one source flag per node");
    let n = topo.len();
    let mut lists: Vec<Vec<(u64, NodeId)>> = vec![Vec::new(); n];
    for s in topo.nodes() {
        if !sources[s.index()] {
            continue;
        }
        // Dijkstra over delays from s.
        let mut dist = vec![u64::MAX; n];
        let mut heap = BinaryHeap::new();
        dist[s.index()] = 0;
        heap.push(Reverse((0u64, s.0)));
        while let Some(Reverse((d, v))) = heap.pop() {
            let v = NodeId(v);
            if d > dist[v.index()] || d > h {
                continue;
            }
            for (_, u, _, delay) in topo.arcs(v) {
                let nd = d.saturating_add(delay);
                if nd < dist[u.index()] && nd <= h {
                    dist[u.index()] = nd;
                    heap.push(Reverse((nd, u.0)));
                }
            }
        }
        for v in topo.nodes() {
            if dist[v.index()] <= h {
                lists[v.index()].push((dist[v.index()], s));
            }
        }
    }
    for list in &mut lists {
        list.sort_unstable();
        list.truncate(sigma);
    }
    lists
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_delays_count_hops() {
        let topo = Topology::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1)]).unwrap();
        let lists = delayed_detection_reference(&topo, &[true, false, false, true], 2, 5);
        assert_eq!(lists[1], vec![(1, NodeId(0)), (2, NodeId(3))]);
        assert_eq!(lists[0], vec![(0, NodeId(0))]); // node 3 is 3 hops away
    }

    #[test]
    fn delays_stretch_distances() {
        let topo = Topology::from_edges(3, &[(0, 1, 6), (1, 2, 6)])
            .unwrap()
            .with_delays(|w| w / 2);
        let lists = delayed_detection_reference(&topo, &[true, false, false], 10, 5);
        assert_eq!(lists[2], vec![(6, NodeId(0))]);
        let lists_tight = delayed_detection_reference(&topo, &[true, false, false], 5, 5);
        assert!(lists_tight[2].is_empty());
    }
}
