//! The per-node source-detection program.

use congest::{bits_for, Ctx, Message, NodeId, Port, Program};
use std::collections::BTreeSet;
use std::sync::Arc;

/// A `(distance, source)` announcement, with the auxiliary tag bit the
/// PODC 2015 paper appends to indicate membership of the source in a
/// higher-level sample set (Lemma 4.7: "by appending a bit to messages
/// indicating whether `s ∈ S_l` is also in `S_{l+1}`").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SdMsg {
    /// Distance from the announcing node to the source, in delay-hops.
    pub dist: u64,
    /// The source.
    pub src: NodeId,
    /// Auxiliary source attribute carried alongside.
    pub tag: bool,
}

impl Message for SdMsg {
    fn bit_size(&self) -> usize {
        // (distance, source id, tag): distances are < h + max_delay, ids
        // < n; both are O(log n) under the paper's assumptions.
        bits_for(self.dist.saturating_add(1)) + bits_for(u64::from(self.src.0) + 1) + 1
    }
}

/// One entry of a node's output list.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SdEntry {
    /// Delay-hop distance to the source.
    pub dist: u64,
    /// The source.
    pub src: NodeId,
    /// The source's tag bit.
    pub tag: bool,
}

/// Dense indexing of the source set `S`.
///
/// Only source ids ever appear as state-table keys (every announcement
/// originates at a source), so per-node state is stored in flat vectors
/// indexed by *source index* instead of `HashMap<NodeId, …>` — no SipHash,
/// no per-entry heap boxes, O(1) lookups. One `SourceSpace` is shared by
/// all node programs of a detection instance via [`Arc`]; it also owns the
/// per-source tag bits (a source's tag is a global attribute carried
/// verbatim by every announcement, so storing it once replaces `n` per-node
/// copies).
///
/// Source indices are assigned in increasing node-id order, so
/// `(dist, source index)` ordering coincides with the paper's
/// `(dist, source id)` lexicographic ordering.
#[derive(Debug)]
pub struct SourceSpace {
    /// Node id → source index, `u32::MAX` for non-sources.
    index_of: Vec<u32>,
    /// Source index → node id, strictly increasing.
    ids: Vec<NodeId>,
    /// Source index → auxiliary tag bit.
    tags: Vec<bool>,
}

impl SourceSpace {
    /// Builds the index over `sources` (one flag per node) with the
    /// per-node auxiliary `tags`.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn new(sources: &[bool], tags: &[bool]) -> Self {
        assert_eq!(sources.len(), tags.len(), "one tag per node");
        let mut index_of = vec![u32::MAX; sources.len()];
        let mut ids = Vec::new();
        let mut src_tags = Vec::new();
        for (v, &is_src) in sources.iter().enumerate() {
            if is_src {
                index_of[v] = ids.len() as u32;
                ids.push(NodeId::from_index(v));
                src_tags.push(tags[v]);
            }
        }
        SourceSpace {
            index_of,
            ids,
            tags: src_tags,
        }
    }

    /// Number of sources.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` if the source set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The source index of node `v`, if `v` is a source.
    #[inline]
    pub fn index_of(&self, v: NodeId) -> Option<u32> {
        match self.index_of.get(v.index()) {
            Some(&si) if si != u32::MAX => Some(si),
            _ => None,
        }
    }

    /// The node id of source index `si`.
    #[inline]
    pub fn id(&self, si: u32) -> NodeId {
        self.ids[si as usize]
    }

    /// The tag bit of source index `si`.
    #[inline]
    pub fn tag(&self, si: u32) -> bool {
        self.tags[si as usize]
    }
}

/// Sentinel for "no distance recorded" in the packed per-source state.
const NONE32: u32 = u32::MAX;

/// Packs a `(dist, source index)` pair into one ordered key.
#[inline]
fn pack(dist: u32, si: u32) -> u64 {
    (u64::from(dist) << 32) | u64::from(si)
}

/// Inverse of [`pack`].
#[inline]
fn unpack(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

/// Per-source node state, packed into one 16-byte record so the arrival
/// hot path (best-distance check, routing archive, announce bookkeeping)
/// touches a single cache line per source instead of three tables.
#[derive(Clone, Copy, Debug)]
struct SourceState {
    /// Best known distance ([`NONE32`] = unknown).
    best: u32,
    /// Smallest announced distance ([`NONE32`] = never announced).
    sent: u32,
    /// Best *received* distance, for the routing archive
    /// ([`NONE32`] = none).
    route_dist: u32,
    /// Arrival port of `route_dist`.
    route_port: Port,
}

const EMPTY_STATE: SourceState = SourceState {
    best: NONE32,
    sent: NONE32,
    route_dist: NONE32,
    route_port: 0,
};

/// Node state of the pipelined detection algorithm.
///
/// Each round the node broadcasts the lexicographically smallest
/// not-yet-announced `(dist, src)` pair that (i) is currently among its σ
/// smallest known pairs and (ii) has `dist < h` (a neighbor's copy would
/// otherwise overshoot the horizon). This is the Lenzen–Peleg algorithm
/// with the message-pruning modification of Lemma 3.4 of the PODC 2015
/// paper.
///
/// All per-source state lives in one dense [`SourceState`] vector indexed
/// by [`SourceSpace`] source index. Distances are stored as `u32` (the
/// horizon bounds them far below `u32::MAX`).
#[derive(Debug)]
pub struct SdProgram {
    space: Arc<SourceSpace>,
    /// `Some(tag)` if this node is a source.
    self_source: Option<bool>,
    h: u32,
    sigma: usize,
    cap: u64,
    /// Current best `(dist, source index)` pairs, packed as
    /// `dist << 32 | si` (same lexicographic order, single-word compares).
    known: BTreeSet<u64>,
    /// Entries not yet announced (kept pruned to the current top-σ, with
    /// `dist < h`), same packing as `known`.
    pending: BTreeSet<u64>,
    /// Dense per-source state (best/sent/route), indexed by source index.
    state: Vec<SourceState>,
    /// Cached packed key of the σ-th smallest `known` entry
    /// (`u64::MAX` while `known.len() ≤ σ`). Monotonically non-increasing
    /// (entries only ever improve), maintained by [`SdProgram::insert`] so
    /// neither the announce path nor non-improving inserts walk the tree.
    cut: u64,
    msgs_sent: u64,
}

impl SdProgram {
    /// Creates the program for one node.
    ///
    /// `space` is the instance-wide source index (shared across nodes);
    /// `source` is `Some(tag)` if the node is in `S` (with auxiliary bit
    /// `tag`), `None` otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `h ≥ u32::MAX` (distances are stored as `u32`; every
    /// meaningful horizon is a hop count far below that).
    pub fn new(
        space: Arc<SourceSpace>,
        source: Option<bool>,
        h: u64,
        sigma: usize,
        cap: Option<u64>,
    ) -> Self {
        assert!(
            h < u64::from(u32::MAX),
            "horizon {h} too large for the packed distance representation"
        );
        let s = space.len();
        SdProgram {
            space,
            self_source: source,
            h: h as u32,
            sigma,
            cap: cap.unwrap_or(u64::MAX),
            known: BTreeSet::new(),
            pending: BTreeSet::new(),
            state: vec![EMPTY_STATE; s],
            cut: u64::MAX,
            msgs_sent: 0,
        }
    }

    /// The node's current output list: its up-to-σ smallest entries.
    pub fn list(&self) -> Vec<SdEntry> {
        self.known
            .iter()
            .take(self.sigma)
            .map(|&key| {
                let (dist, si) = unpack(key);
                SdEntry {
                    dist: u64::from(dist),
                    src: self.space.id(si),
                    tag: self.space.tag(si),
                }
            })
            .collect()
    }

    /// The routing archive: best received `(dist, arrival port)` per
    /// source, as `(source, dist, port)` triples sorted by source id.
    pub fn routes(&self) -> Vec<(NodeId, u64, Port)> {
        self.state
            .iter()
            .enumerate()
            .filter(|(_, st)| st.route_dist != NONE32)
            .map(|(si, st)| {
                (
                    self.space.id(si as u32),
                    u64::from(st.route_dist),
                    st.route_port,
                )
            })
            .collect()
    }

    /// Messages broadcast by this node so far.
    pub fn msgs_sent(&self) -> u64 {
        self.msgs_sent
    }

    fn insert(&mut self, dist: u32, si: u32) {
        if dist > self.h {
            return;
        }
        let st = &mut self.state[si as usize];
        if dist >= st.best {
            return;
        }
        let old = st.best;
        st.best = dist;
        let already_announced_better = st.sent <= dist;
        let key = pack(dist, si);
        if old != NONE32 {
            self.known.remove(&pack(old, si));
            self.pending.remove(&pack(old, si));
        }
        self.known.insert(key);
        // Rank pruning: an entry's rank in `known` never improves over
        // time (improvements only move other entries further *up*), so
        // anything outside the current top-σ can never become worth
        // announcing — it never enters `pending`.
        if dist < self.h && !already_announced_better && key <= self.cut {
            self.pending.insert(key);
        }
        // The cached cut only needs refreshing when the top-σ prefix
        // changed, i.e. when the new key landed inside it.
        if self.known.len() > self.sigma && key < self.cut {
            self.cut = *self
                .known
                .iter()
                .nth(self.sigma - 1)
                .expect("known has more than sigma entries");
            self.pending.retain(|e| *e <= self.cut);
        }
    }
}

impl Program for SdProgram {
    type Msg = SdMsg;

    fn round(&mut self, ctx: &mut Ctx<'_, SdMsg>) {
        if ctx.round() == 0 && self.self_source.is_some() {
            let si = self
                .space
                .index_of(ctx.node())
                .expect("self-source must be in the source space");
            self.insert(0, si);
        }
        // Ingest arrivals in place (the receiver adds the arc's delay: the
        // message crossed `delay` virtual unit edges). The inbox slice
        // outlives the ctx borrow, so no arrival is cloned.
        for a in ctx.inbox() {
            let d = a.msg.dist.saturating_add(ctx.delay(a.port));
            if d > u64::from(self.h) {
                continue;
            }
            let d = d as u32;
            let si = self
                .space
                .index_of(a.msg.src)
                .expect("announcements originate at sources");
            let st = &mut self.state[si as usize];
            if d < st.route_dist {
                st.route_dist = d;
                st.route_port = a.port;
            }
            self.insert(d, si);
        }
        // Announce the smallest pending entry; `pending ⊆ {e ≤ cut}` is an
        // invariant of `insert`, so the head of `pending` is always inside
        // the current top-σ.
        if self.msgs_sent < self.cap {
            if let Some(key) = self.pending.pop_first() {
                debug_assert!(key <= self.cut, "pending entry outside top-sigma");
                let (dist, si) = unpack(key);
                self.state[si as usize].sent = dist;
                self.msgs_sent += 1;
                ctx.broadcast(SdMsg {
                    dist: u64::from(dist),
                    src: self.space.id(si),
                    tag: self.space.tag(si),
                });
            }
        }
    }

    fn is_idle(&self) -> bool {
        self.pending.is_empty() || self.msgs_sent >= self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A space where every node is a source, so source index == node id.
    fn full_space(n: usize) -> Arc<SourceSpace> {
        Arc::new(SourceSpace::new(&vec![true; n], &vec![false; n]))
    }

    #[test]
    fn msg_bit_size_is_logarithmic() {
        let m = SdMsg {
            dist: 100,
            src: NodeId(1000),
            tag: true,
        };
        assert_eq!(m.bit_size(), 7 + 10 + 1);
    }

    #[test]
    fn source_space_indexes_densely() {
        let space = SourceSpace::new(
            &[false, true, false, true, true],
            &[false, true, false, false, true],
        );
        assert_eq!(space.len(), 3);
        assert_eq!(space.index_of(NodeId(1)), Some(0));
        assert_eq!(space.index_of(NodeId(2)), None);
        assert_eq!(space.index_of(NodeId(4)), Some(2));
        assert_eq!(space.id(1), NodeId(3));
        assert!(space.tag(0));
        assert!(!space.tag(1));
        assert!(space.tag(2));
    }

    #[test]
    fn insert_keeps_best_per_source() {
        let mut p = SdProgram::new(full_space(8), None, 10, 4, None);
        p.insert(5, 1);
        p.insert(3, 1);
        p.insert(7, 1); // worse: ignored
        assert_eq!(p.list().len(), 1);
        assert_eq!(p.list()[0].dist, 3);
    }

    #[test]
    fn insert_respects_horizon() {
        let mut p = SdProgram::new(full_space(8), None, 4, 4, None);
        p.insert(5, 1);
        assert!(p.list().is_empty());
        p.insert(4, 2);
        assert_eq!(p.list().len(), 1);
        // dist == h is recorded but never pending (can't help neighbors).
        assert!(p.is_idle());
    }

    #[test]
    fn pending_pruned_outside_top_sigma() {
        let mut p = SdProgram::new(full_space(8), None, 100, 2, None);
        p.insert(10, 5);
        p.insert(11, 6);
        assert_eq!(p.pending.len(), 2);
        p.insert(1, 1);
        p.insert(2, 2);
        // (10,5) and (11,6) fell out of the top-2 forever.
        assert_eq!(p.pending.len(), 2);
        assert!(p.pending.contains(&pack(1, 1)));
        assert!(p.pending.contains(&pack(2, 2)));
    }
}
