//! The per-node source-detection program.

use congest::{bits_for, Ctx, Message, NodeId, Port, Program};
use std::collections::{BTreeSet, HashMap};

/// A `(distance, source)` announcement, with the auxiliary tag bit the
/// PODC 2015 paper appends to indicate membership of the source in a
/// higher-level sample set (Lemma 4.7: "by appending a bit to messages
/// indicating whether `s ∈ S_l` is also in `S_{l+1}`").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SdMsg {
    /// Distance from the announcing node to the source, in delay-hops.
    pub dist: u64,
    /// The source.
    pub src: NodeId,
    /// Auxiliary source attribute carried alongside.
    pub tag: bool,
}

impl Message for SdMsg {
    fn bit_size(&self) -> usize {
        // (distance, source id, tag): distances are < h + max_delay, ids
        // < n; both are O(log n) under the paper's assumptions.
        bits_for(self.dist.saturating_add(1)) + bits_for(u64::from(self.src.0) + 1) + 1
    }
}

/// One entry of a node's output list.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SdEntry {
    /// Delay-hop distance to the source.
    pub dist: u64,
    /// The source.
    pub src: NodeId,
    /// The source's tag bit.
    pub tag: bool,
}

#[derive(Clone, Debug)]
struct SourceInfo {
    dist: u64,
    tag: bool,
}

/// Node state of the pipelined detection algorithm.
///
/// Each round the node broadcasts the lexicographically smallest
/// not-yet-announced `(dist, src)` pair that (i) is currently among its σ
/// smallest known pairs and (ii) has `dist < h` (a neighbor's copy would
/// otherwise overshoot the horizon). This is the Lenzen–Peleg algorithm
/// with the message-pruning modification of Lemma 3.4 of the PODC 2015
/// paper.
#[derive(Debug)]
pub struct SdProgram {
    /// `Some(tag)` if this node is a source.
    self_source: Option<bool>,
    h: u64,
    sigma: usize,
    cap: u64,
    /// Current best `(dist, src)` pairs, ordered.
    known: BTreeSet<(u64, NodeId)>,
    /// Best distance (and tag) per source.
    best: HashMap<NodeId, SourceInfo>,
    /// Entries not yet announced (kept pruned to the current top-σ, with
    /// `dist < h`).
    pending: BTreeSet<(u64, NodeId)>,
    /// Smallest announced distance per source.
    sent_best: HashMap<NodeId, u64>,
    /// Best `(dist, port)` this node ever *received* per source; the
    /// "archive" that makes greedy next-hop forwarding total (see
    /// DESIGN.md, routing-state archives).
    route: HashMap<NodeId, (u64, Port)>,
    msgs_sent: u64,
}

impl SdProgram {
    /// Creates the program for one node.
    ///
    /// `source` is `Some(tag)` if the node is in `S` (with auxiliary bit
    /// `tag`), `None` otherwise.
    pub fn new(source: Option<bool>, h: u64, sigma: usize, cap: Option<u64>) -> Self {
        SdProgram {
            self_source: source,
            h,
            sigma,
            cap: cap.unwrap_or(u64::MAX),
            known: BTreeSet::new(),
            best: HashMap::new(),
            pending: BTreeSet::new(),
            sent_best: HashMap::new(),
            route: HashMap::new(),
            msgs_sent: 0,
        }
    }

    /// The node's current output list: its up-to-σ smallest entries.
    pub fn list(&self) -> Vec<SdEntry> {
        self.known
            .iter()
            .take(self.sigma)
            .map(|&(dist, src)| SdEntry {
                dist,
                src,
                tag: self.best[&src].tag,
            })
            .collect()
    }

    /// The routing archive: best received `(dist, arrival port)` per source.
    pub fn routes(&self) -> &HashMap<NodeId, (u64, Port)> {
        &self.route
    }

    /// Messages broadcast by this node so far.
    pub fn msgs_sent(&self) -> u64 {
        self.msgs_sent
    }

    fn insert(&mut self, dist: u64, src: NodeId, tag: bool) {
        if dist > self.h {
            return;
        }
        let improved = match self.best.get(&src) {
            Some(info) => dist < info.dist,
            None => true,
        };
        if !improved {
            return;
        }
        if let Some(old) = self.best.get(&src) {
            self.known.remove(&(old.dist, src));
            self.pending.remove(&(old.dist, src));
        }
        self.best.insert(src, SourceInfo { dist, tag });
        self.known.insert((dist, src));
        let already_announced_better = self.sent_best.get(&src).is_some_and(|&sb| sb <= dist);
        if dist < self.h && !already_announced_better {
            self.pending.insert((dist, src));
        }
        // Rank pruning: an entry's rank in `known` never improves over
        // time (improvements only move other entries further *up*), so
        // anything outside the current top-σ can never become worth
        // announcing.
        if self.known.len() > self.sigma {
            if let Some(&cut) = self.known.iter().nth(self.sigma - 1) {
                self.pending.retain(|e| *e <= cut);
            }
        }
    }
}

impl Program for SdProgram {
    type Msg = SdMsg;

    fn round(&mut self, ctx: &mut Ctx<'_, SdMsg>) {
        if ctx.round() == 0 {
            if let Some(tag) = self.self_source {
                let me = ctx.node();
                self.insert(0, me, tag);
            }
        }
        // Ingest arrivals (the receiver adds the arc's delay: the message
        // crossed `delay` virtual unit edges).
        let arrivals: Vec<(Port, u64, SdMsg)> = ctx
            .inbox()
            .iter()
            .map(|a| (a.port, ctx.delay(a.port), a.msg.clone()))
            .collect();
        for (port, delay, msg) in arrivals {
            let d = msg.dist.saturating_add(delay);
            if d > self.h {
                continue;
            }
            match self.route.get(&msg.src) {
                Some(&(rd, _)) if rd <= d => {}
                _ => {
                    self.route.insert(msg.src, (d, port));
                }
            }
            self.insert(d, msg.src, msg.tag);
        }
        // Announce the smallest pending entry that is still in the top-σ.
        if self.msgs_sent < self.cap {
            let cut = self.known.iter().nth(self.sigma.saturating_sub(1)).copied();
            let candidate = self
                .pending
                .iter()
                .find(|&&e| cut.is_none_or(|c| e <= c))
                .copied();
            if let Some((dist, src)) = candidate {
                self.pending.remove(&(dist, src));
                self.sent_best.insert(src, dist);
                self.msgs_sent += 1;
                let tag = self.best[&src].tag;
                ctx.broadcast(SdMsg { dist, src, tag });
            }
        }
    }

    fn is_idle(&self) -> bool {
        self.pending.is_empty() || self.msgs_sent >= self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_bit_size_is_logarithmic() {
        let m = SdMsg {
            dist: 100,
            src: NodeId(1000),
            tag: true,
        };
        assert_eq!(m.bit_size(), 7 + 10 + 1);
    }

    #[test]
    fn insert_keeps_best_per_source() {
        let mut p = SdProgram::new(None, 10, 4, None);
        p.insert(5, NodeId(1), false);
        p.insert(3, NodeId(1), false);
        p.insert(7, NodeId(1), false); // worse: ignored
        assert_eq!(p.list().len(), 1);
        assert_eq!(p.list()[0].dist, 3);
    }

    #[test]
    fn insert_respects_horizon() {
        let mut p = SdProgram::new(None, 4, 4, None);
        p.insert(5, NodeId(1), false);
        assert!(p.list().is_empty());
        p.insert(4, NodeId(2), false);
        assert_eq!(p.list().len(), 1);
        // dist == h is recorded but never pending (can't help neighbors).
        assert!(p.is_idle());
    }

    #[test]
    fn pending_pruned_outside_top_sigma() {
        let mut p = SdProgram::new(None, 100, 2, None);
        p.insert(10, NodeId(5), false);
        p.insert(11, NodeId(6), false);
        assert_eq!(p.pending.len(), 2);
        p.insert(1, NodeId(1), false);
        p.insert(2, NodeId(2), false);
        // (10,5) and (11,6) fell out of the top-2 forever.
        assert_eq!(p.pending.len(), 2);
        assert!(p.pending.contains(&(1, NodeId(1))));
        assert!(p.pending.contains(&(2, NodeId(2))));
    }
}
