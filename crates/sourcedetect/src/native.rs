//! Native (centralized) execution of `(S, h, σ)`-detection.
//!
//! [`native_detection`] computes the **canonical fixpoint** of the
//! pipelined Lenzen–Peleg algorithm — the state every node reaches under
//! *instant pipelining*, where an announcement of a `(dist, src)` pair is
//! delivered at "time" `dist` with no queueing delay. Under that schedule
//! a node announces a pair iff the pair is among the σ smallest of its
//! **final** list (its rank among smaller pairs is already settled when
//! the pair's distance is) and `dist < h`, so the result is a pure
//! function of `(topology, sources, h, σ)` — no round scheduling, no
//! arrival order.
//!
//! This is the artifact contract shared by the simulated and native build
//! engines (see `pde_core::ladder`):
//!
//! * **Lists** are identical to the CONGEST execution's: both equal the
//!   exact top-σ `(delay-distance, source)` pairs within horizon `h`
//!   (the simulated lists by the Lenzen–Peleg theorem, pinned against
//!   [`crate::delayed_detection_reference`] by the `runner` tests; the
//!   canonical lists because every exact top-σ pair is relayed by its
//!   shortest-path predecessor, whose own copy ranks within the top σ
//!   with `dist < h` — the standard prefix argument).
//! * **Routes** (the archive of best *received* `(dist, port)` per
//!   source) are the canonical ones: best over announcements of the
//!   idealized schedule, ties broken towards the smaller arrival port.
//!   The round-by-round execution additionally receives announcements of
//!   transient entries (pairs announced before better ones crowded them
//!   out of the top σ) whose exact set depends on queueing order, so the
//!   schemes assemble their artifacts from the canonical archive in both
//!   build modes and the CONGEST run remains the round/message
//!   *measurement*.
//!
//! The canonical archive keeps the invariants the schemes rely on: it
//! contains every list entry (minus the node itself), and following a
//! route entry's port strictly decreases the recorded distance by at
//! least the arc's delay, so greedy forwarding is total and terminates.
//!
//! Algorithmically this is a bounded multi-source Dijkstra over the
//! delayed arcs with a per-node announcement budget of σ, processed in
//! globally increasing `(dist, source)` order via a bucket queue (delays
//! are small integers), and per-`(node, source)` state in a dense matrix
//! when `n·|S|` is small enough, else per-node hash rows. `O(Σ arrivals ·
//! log)`-free: bucket draining plus one sort per bucket.

use crate::program::{SdEntry, SourceSpace};
use crate::runner::{DetectParams, DetectionOutput};
use congest::{FxHashMap, Metrics, NodeId, Port, Topology};

/// Sentinel for "no distance recorded" (mirrors the program's packing).
const NONE32: u32 = u32::MAX;

/// Cap on `n · |S|` for the dense per-(node, source) state matrix;
/// above it the kernel falls back to per-node hash rows so memory tracks
/// reached pairs. The switch is invisible in the output.
const DENSE_STATE_LIMIT: usize = 1 << 24;

/// Picks the state representation: dense only when the full matrix is
/// both affordable *and* not grossly larger than the number of pairs the
/// run can actually touch. Every node announces at most σ pairs per
/// rung (the rank budget), so at most `2·m·σ + n` distinct
/// `(node, source)` pairs are ever written; when the matrix dwarfs that
/// (σ ≪ |S|, e.g. the σ = 4 simulator benchmarks), zeroing `n·|S|`
/// entries per rung would dominate the whole run, and hash rows win.
fn choose_dense(n: usize, s: usize, m_edges: usize, sigma: usize) -> bool {
    let cells = n.saturating_mul(s);
    let touched = m_edges
        .saturating_mul(2)
        .saturating_mul(sigma)
        .saturating_add(n);
    cells <= DENSE_STATE_LIMIT && cells <= touched.saturating_mul(8)
}

/// Per-`(node, source)` state: tentative/final best known distance plus
/// the best *received* `(dist, port)` for the routing archive.
#[derive(Clone, Copy, Debug)]
struct NState {
    dist: u32,
    route_dist: u32,
    route_port: Port,
}

const EMPTY: NState = NState {
    dist: NONE32,
    route_dist: NONE32,
    route_port: 0,
};

/// Dense or sparse `(node, source) → NState` storage.
enum StateTables {
    Dense(Vec<NState>),
    Sparse(Vec<FxHashMap<u32, NState>>),
}

impl StateTables {
    fn new(n: usize, s: usize, dense: bool) -> Self {
        if dense {
            StateTables::Dense(vec![EMPTY; n * s])
        } else {
            StateTables::Sparse(std::iter::repeat_with(FxHashMap::default).take(n).collect())
        }
    }

    #[inline]
    fn get(&self, s: usize, v: usize, si: u32) -> NState {
        match self {
            StateTables::Dense(t) => t[v * s + si as usize],
            StateTables::Sparse(rows) => rows[v].get(&si).copied().unwrap_or(EMPTY),
        }
    }

    #[inline]
    fn get_mut(&mut self, s: usize, v: usize, si: u32) -> &mut NState {
        match self {
            StateTables::Dense(t) => &mut t[v * s + si as usize],
            StateTables::Sparse(rows) => rows[v].entry(si).or_insert(EMPTY),
        }
    }
}

/// Packs `(si, v)` into one sortable key: within a distance bucket, pairs
/// are processed in `(source index, node)` order, which realizes the
/// global `(dist, source)` processing order the canonical semantics needs
/// (the node component is arbitrary but fixed — pairs of different nodes
/// at the same `(dist, source)` never interact).
#[inline]
fn pack(si: u32, v: u32) -> u64 {
    (u64::from(si) << 32) | u64::from(v)
}

#[inline]
fn unpack(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

/// Runs canonical `(S, h, σ)`-detection on `topo` (whose arc *delays*
/// define the hop metric, exactly as in [`crate::run_detection`]).
///
/// Output shape matches [`crate::run_detection`]: per-node top-σ lists,
/// per-node routing archives sorted by source id, per-node announcement
/// counts (the idealized-schedule analogue of the broadcast counts), and
/// zeroed simulator metrics (a native run charges no rounds).
///
/// # Panics
///
/// Panics if the flag slices are mis-sized or `h ≥ u32::MAX` (as the
/// program does).
pub fn native_detection(
    topo: &Topology,
    sources: &[bool],
    tags: &[bool],
    params: &DetectParams,
) -> DetectionOutput {
    let n = topo.len();
    let s = sources.iter().filter(|&&f| f).count();
    let dense = choose_dense(n, s, topo.num_edges(), params.sigma);
    native_detection_impl(topo, sources, tags, params, dense)
}

/// [`native_detection`] with the state representation pinned (the choice
/// is output-invisible; tests pin that directly).
fn native_detection_impl(
    topo: &Topology,
    sources: &[bool],
    tags: &[bool],
    params: &DetectParams,
    dense: bool,
) -> DetectionOutput {
    let n = topo.len();
    assert_eq!(sources.len(), n, "one source flag per node");
    assert_eq!(tags.len(), n, "one tag flag per node");
    assert!(
        params.h < u64::from(u32::MAX),
        "horizon {} too large for the packed distance representation",
        params.h
    );
    let h = params.h;
    let sigma = params.sigma;
    let cap = params.msg_cap.unwrap_or(u64::MAX);

    let space = SourceSpace::new(sources, tags);
    let s = space.len();
    let mut state = StateTables::new(n, s, dense);
    // Finalized-pair count per node (the rank of the next finalized pair)
    // and announcements made (for the optional message cap).
    let mut rank = vec![0u32; n];
    let mut announced = vec![0u64; n];

    // Bucket queue over distances 0..=d_max. Relaxations always move to
    // a strictly larger bucket (delays are ≥ 1), so each bucket is
    // sorted and drained exactly once. The horizon may far exceed any
    // realizable delay distance (h' is a worst-case bound), so the array
    // is additionally capped by the longest possible simple delay path.
    let reach_cap = topo
        .max_delay()
        .saturating_mul(n.saturating_sub(1) as u64)
        .min(h);
    let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); reach_cap as usize + 1];
    for v in topo.nodes() {
        if sources[v.index()] {
            let si = space.index_of(v).expect("source is in the source space");
            state.get_mut(s, v.index(), si).dist = 0;
            buckets[0].push(pack(si, v.0));
        }
    }

    let mut bucket = Vec::new();
    for d in 0..=reach_cap {
        std::mem::swap(&mut bucket, &mut buckets[d as usize]);
        if bucket.is_empty() {
            continue;
        }
        bucket.sort_unstable();
        for &key in &bucket {
            let (si, v) = unpack(key);
            let vi = v as usize;
            if u64::from(state.get(s, vi, si).dist) != d {
                continue; // stale entry, improved before finalization
            }
            let r = rank[vi];
            rank[vi] = r + 1;
            // Announce iff within the final top σ, below the horizon, and
            // under the message cap — the canonical counterpart of the
            // program's pending-queue rules.
            if u64::from(r) >= sigma as u64 || d >= h || announced[vi] >= cap {
                continue;
            }
            announced[vi] += 1;
            let vn = NodeId(v);
            for (port, u, _w, delay) in topo.arcs(vn) {
                debug_assert!(delay >= 1, "detection needs delays >= 1");
                let nd = d.saturating_add(delay);
                if nd > h {
                    continue;
                }
                let nd32 = nd as u32;
                let ap = topo.reverse_port(vn, port);
                let st = state.get_mut(s, u.index(), si);
                // Archive: best received (dist, port), smaller port wins
                // distance ties (arrival-order-free).
                if (nd32, ap) < (st.route_dist, st.route_port) {
                    st.route_dist = nd32;
                    st.route_port = ap;
                }
                if nd32 < st.dist {
                    st.dist = nd32;
                    // Any improving candidate is realized by a simple
                    // chain of announcers, so it stays within reach_cap.
                    debug_assert!(nd <= reach_cap);
                    buckets[nd as usize].push(pack(si, u.0));
                }
            }
        }
        bucket.clear();
    }

    // Assemble outputs in the runner's shapes.
    let mut lists = Vec::with_capacity(n);
    let mut routes = Vec::with_capacity(n);
    let mut known: Vec<(u32, u32)> = Vec::new();
    for v in 0..n {
        known.clear();
        let mut row: Vec<(NodeId, u64, Port)> = Vec::new();
        match &state {
            StateTables::Dense(t) => {
                for (si, st) in t[v * s..(v + 1) * s].iter().enumerate() {
                    if st.dist != NONE32 {
                        known.push((st.dist, si as u32));
                    }
                    if st.route_dist != NONE32 {
                        row.push((space.id(si as u32), u64::from(st.route_dist), st.route_port));
                    }
                }
            }
            StateTables::Sparse(rows) => {
                let mut by_si: Vec<(u32, NState)> =
                    rows[v].iter().map(|(&si, &st)| (si, st)).collect();
                by_si.sort_unstable_by_key(|&(si, _)| si);
                for (si, st) in by_si {
                    if st.dist != NONE32 {
                        known.push((st.dist, si));
                    }
                    if st.route_dist != NONE32 {
                        row.push((space.id(si), u64::from(st.route_dist), st.route_port));
                    }
                }
            }
        }
        known.sort_unstable();
        known.truncate(sigma);
        lists.push(
            known
                .iter()
                .map(|&(dist, si)| SdEntry {
                    dist: u64::from(dist),
                    src: space.id(si),
                    tag: space.tag(si),
                })
                .collect(),
        );
        routes.push(row);
    }

    DetectionOutput {
        lists,
        routes,
        msgs_per_node: announced,
        metrics: Metrics::new(n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::delayed_detection_reference;
    use crate::runner::run_detection;

    fn params(h: u64, sigma: usize) -> DetectParams {
        DetectParams {
            h,
            sigma,
            msg_cap: None,
            exact_rounds: false,
        }
    }

    /// Canonical lists equal the exact reference and the simulated lists.
    fn check_lists(topo: &Topology, sources: &[bool], h: u64, sigma: usize) {
        let nat = native_detection(topo, sources, &vec![false; topo.len()], &params(h, sigma));
        let sim = run_detection(topo, sources, &vec![false; topo.len()], &params(h, sigma));
        let reference = delayed_detection_reference(topo, sources, h, sigma);
        for v in topo.nodes() {
            let got: Vec<(u64, NodeId)> = nat.lists[v.index()]
                .iter()
                .map(|e| (e.dist, e.src))
                .collect();
            assert_eq!(got, reference[v.index()], "node {v} (h={h}, sigma={sigma})");
            assert_eq!(
                nat.lists[v.index()],
                sim.lists[v.index()],
                "node {v}: native vs simulated lists (h={h}, sigma={sigma})"
            );
        }
    }

    #[test]
    fn lists_match_reference_on_path() {
        let topo =
            Topology::from_edges(6, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 4, 1), (4, 5, 1)])
                .unwrap();
        let sources = [true, false, true, false, false, true];
        for h in 1..=6 {
            for sigma in 1..=3 {
                check_lists(&topo, &sources, h, sigma);
            }
        }
    }

    #[test]
    fn lists_match_reference_on_delayed_grid() {
        let mut edges = Vec::new();
        let id = |r: u32, c: u32| r * 3 + c;
        for r in 0..3u32 {
            for c in 0..3u32 {
                if c + 1 < 3 {
                    edges.push((id(r, c), id(r, c + 1), 1 + u64::from(r)));
                }
                if r + 1 < 3 {
                    edges.push((id(r, c), id(r + 1, c), 2));
                }
            }
        }
        let topo = Topology::from_edges(9, &edges).unwrap().with_delays(|w| w);
        let sources = [true, false, false, false, true, false, false, false, true];
        for h in [2, 4, 8] {
            for sigma in [1, 2, 3] {
                check_lists(&topo, &sources, h, sigma);
            }
        }
    }

    #[test]
    fn archive_contains_lists_and_routes_decrease() {
        let topo = Topology::from_edges(
            8,
            &[
                (0, 1, 1),
                (1, 2, 1),
                (2, 3, 1),
                (3, 4, 1),
                (4, 5, 1),
                (5, 6, 1),
                (6, 7, 1),
                (0, 7, 1),
            ],
        )
        .unwrap();
        let sources = [true, true, true, true, false, false, false, false];
        let out = native_detection(&topo, &sources, &[false; 8], &params(5, 2));
        for v in topo.nodes() {
            // Archives sorted by source id.
            let r = &out.routes[v.index()];
            assert!(r.windows(2).all(|w| w[0].0 < w[1].0), "unsorted at {v}");
            for e in &out.lists[v.index()] {
                if e.src == v {
                    continue;
                }
                // Every non-self list entry is archived at the same dist,
                // and its port leads strictly closer to the source.
                let &(_, d, port) = r
                    .iter()
                    .find(|&&(s, _, _)| s == e.src)
                    .unwrap_or_else(|| panic!("list entry {} missing from archive at {v}", e.src));
                assert_eq!(d, e.dist, "archive dist mismatch at {v} for {}", e.src);
                let u = topo.neighbor(v, port);
                if u != e.src {
                    let ru = &out.routes[u.index()];
                    let &(_, du, _) = ru.iter().find(|&&(s, _, _)| s == e.src).expect("chained");
                    assert!(du < d, "no strict progress {v}->{u} for {}", e.src);
                }
            }
        }
    }

    #[test]
    fn truncation_prunes_propagation() {
        // Path 0-1-2-3 with sources {0, 1, 2}: with sigma = 1 node 2's
        // canonical announcement budget is spent on itself, so node 3
        // only ever hears of source 2 (plus nothing beyond its top-1).
        let topo = Topology::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1)]).unwrap();
        let sources = [true, true, true, false];
        let out = native_detection(&topo, &sources, &[false; 4], &params(3, 1));
        assert_eq!(out.lists[3].len(), 1);
        assert_eq!(out.lists[3][0].src, NodeId(2));
        assert_eq!(out.routes[3].len(), 1, "truncated sources must not leak");
    }

    #[test]
    fn message_cap_is_canonical_prefix() {
        let topo = Topology::from_edges(5, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 4, 1)]).unwrap();
        let sources = [true; 5];
        let capped = native_detection(
            &topo,
            &sources,
            &[false; 5],
            &DetectParams {
                h: 5,
                sigma: 5,
                msg_cap: Some(2),
                exact_rounds: false,
            },
        );
        assert!(capped.msgs_per_node.iter().all(|&m| m <= 2));
    }

    #[test]
    fn dense_and_sparse_state_agree() {
        // The representation switch must be output-invisible: run the
        // same instance through both and compare everything.
        let mut edges = Vec::new();
        for i in 0..9u32 {
            edges.push((i, (i + 1) % 10, 1 + u64::from(i % 3)));
        }
        edges.push((0, 5, 2));
        let topo = Topology::from_edges(10, &edges).unwrap().with_delays(|w| w);
        let sources: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        let tags: Vec<bool> = (0..10).map(|i| i % 4 == 0).collect();
        for (h, sigma) in [(4, 2), (9, 3), (20, 10)] {
            let d = native_detection_impl(&topo, &sources, &tags, &params(h, sigma), true);
            let sp = native_detection_impl(&topo, &sources, &tags, &params(h, sigma), false);
            assert_eq!(d.lists, sp.lists, "h={h} sigma={sigma}");
            assert_eq!(d.routes, sp.routes, "h={h} sigma={sigma}");
            assert_eq!(d.msgs_per_node, sp.msgs_per_node, "h={h} sigma={sigma}");
        }
    }

    #[test]
    fn tags_are_carried() {
        let topo = Topology::from_edges(3, &[(0, 1, 1), (1, 2, 1)]).unwrap();
        let out = native_detection(
            &topo,
            &[true, false, true],
            &[true, false, false],
            &params(5, 5),
        );
        let l1 = &out.lists[1];
        assert_eq!(l1.len(), 2);
        let tag_of = |src: u32| l1.iter().find(|e| e.src == NodeId(src)).unwrap().tag;
        assert!(tag_of(0));
        assert!(!tag_of(2));
    }
}
