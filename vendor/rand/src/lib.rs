//! Workspace-local stand-in for the subset of the [`rand` 0.9 API][rand]
//! used by this repository.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the handful of items the crates actually call:
//! [`RngCore`], [`Rng::random_range`] / [`Rng::random_bool`],
//! [`SeedableRng::seed_from_u64`], [`rngs::SmallRng`] (xoshiro256++) and
//! [`seq::SliceRandom::shuffle`]. Semantics follow the upstream contract
//! (half-open and inclusive integer ranges, probability in `[0, 1]`,
//! Fisher–Yates shuffle); the exact output streams are *not* guaranteed to
//! match upstream `rand`, only to be deterministic per seed.
//!
//! [rand]: https://docs.rs/rand/0.9

#![forbid(unsafe_code)]

/// Low-level source of random `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: distr::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range [0, 1]");
        // 53 random bits -> uniform f64 in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform-distribution plumbing (only what [`Rng::random_range`] needs).
pub mod distr {
    /// Range-to-sample conversion traits.
    pub mod uniform {
        use crate::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// A range that can produce uniform samples of `T`.
        pub trait SampleRange<T> {
            /// Draws one sample; panics if the range is empty.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        // Widening-multiply bounded sampling with a rejection pass
        // (Lemire's method) so small ranges are exactly uniform.
        pub(crate) fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let threshold = bound.wrapping_neg() % bound;
            loop {
                let wide = (rng.next_u64() as u128) * (bound as u128);
                if (wide as u64) >= threshold {
                    return (wide >> 64) as u64;
                }
            }
        }

        macro_rules! impl_sample_range_int {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "empty range");
                        let span = (self.end as u64).wrapping_sub(self.start as u64);
                        self.start + bounded_u64(rng, span) as $t
                    }
                }

                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty range");
                        let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                        if span == 0 {
                            // Full u64 domain.
                            return rng.next_u64() as $t;
                        }
                        lo + bounded_u64(rng, span) as $t
                    }
                }
            )*};
        }

        impl_sample_range_int!(u8, u16, u32, u64, usize);

        impl SampleRange<f64> for Range<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "empty range");
                let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
                self.start + unit * (self.end - self.start)
            }
        }
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use crate::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG (xoshiro256++), seeded via
    /// SplitMix64 — mirrors the role of `rand::rngs::SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use crate::Rng;

    /// Extension trait for slices (shuffling, random selection).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

/// Re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..2000 {
            let x: u64 = rng.random_range(3..10);
            assert!((3..10).contains(&x));
            let y: u32 = rng.random_range(5..=5);
            assert_eq!(y, 5);
            let z: usize = rng.random_range(0..=3);
            assert!(z <= 3);
        }
    }

    #[test]
    fn bool_probability_is_sane() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits={hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left slice in order (astronomically unlikely)"
        );
    }
}
