//! Workspace-local stand-in for the subset of the [proptest] API used by
//! this repository's tests.
//!
//! The build environment has no network access to crates.io, so this crate
//! reimplements the pieces the tests call: the [`strategy::Strategy`]
//! trait with `prop_map` / `prop_flat_map` / `boxed`, range and tuple and
//! [`collection::vec`] strategies, [`strategy::Just`], [`prop_oneof!`],
//! the [`proptest!`] test macro, `prop_assert!` / `prop_assert_eq!`, and
//! [`test_runner::TestCaseError`] / [`test_runner::ProptestConfig`].
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its deterministic per-case
//!   seed (derived from the test name and case index) instead of a
//!   minimized input; re-running the test reproduces it exactly.
//! * Generation is driven by the workspace's vendored `rand` shim, so all
//!   runs are deterministic — there is no persisted failure file.
//!
//! [proptest]: https://docs.rs/proptest

#![forbid(unsafe_code)]

/// Strategies: composable random-value generators.
pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of test values. The `Value` associated type mirrors the
    /// real proptest trait, so `impl Strategy<Value = T>` bounds work.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Feeds generated values into `f` to build a dependent strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe core of [`Strategy`], used by [`BoxedStrategy`].
    trait DynStrategy {
        type Value;
        fn dyn_generate(&self, rng: &mut SmallRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn dyn_generate(&self, rng: &mut SmallRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut SmallRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut SmallRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among equally-weighted strategies ([`prop_oneof!`]).
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// Builds from a non-empty list of erased strategies.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            let i = rng.random_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.random_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }

    /// Each element drawn from the strategy at its own index (real
    /// proptest gives `Vec<S>` the same meaning).
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-execution plumbing: configuration, error type, case loop.
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::fmt;

    /// Subset of proptest's run configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A test-case failure (rejections are not modeled).
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case failed, with a human-readable reason.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure from any displayable reason.
        pub fn fail(reason: impl fmt::Display) -> Self {
            TestCaseError::Fail(reason.to_string())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(msg) => write!(f, "{msg}"),
            }
        }
    }

    /// Runs `body` for each case with a per-case deterministic RNG, and
    /// panics (standard `#[test]` failure) on the first `Err`.
    pub fn run_cases<F>(config: ProptestConfig, test_name: &str, mut body: F)
    where
        F: FnMut(&mut SmallRng) -> Result<(), TestCaseError>,
    {
        for case in 0..config.cases {
            let seed = fnv1a(test_name) ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut rng = SmallRng::seed_from_u64(seed);
            if let Err(e) = body(&mut rng) {
                panic!(
                    "proptest case {case}/{} of `{test_name}` failed (case seed {seed:#x}): {e}",
                    config.cases
                );
            }
        }
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the `#![proptest_config(..)]` header and `name in strategy`
/// argument bindings, like the real macro. Bodies may use `?` with
/// [`test_runner::TestCaseError`] and the `prop_assert*` macros.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run_cases(config, stringify!($name), |proptest_rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), proptest_rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice among the listed strategies (all must produce the same
/// value type). Weighted variants of the real macro are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Like `assert!`, but fails the proptest case via `return Err(..)` so the
/// harness can report the case seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Like `assert_eq!`, but fails the proptest case via `return Err(..)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` != `{:?}`: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Everything a proptest-using test file typically imports.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}
