//! Workspace-local stand-in for the subset of the [criterion] benchmarking
//! API used by `crates/bench/benches/*.rs`.
//!
//! The build environment has no network access to crates.io, so this crate
//! provides just enough — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`],
//! [`criterion_group!`] / [`criterion_main!`] — for `cargo bench` to
//! compile and produce simple wall-clock numbers (median of the sample
//! runs, printed one line per benchmark). It performs no statistics,
//! plotting, or result persistence; replace with the real crate when the
//! environment gains registry access.
//!
//! [criterion]: https://docs.rs/criterion

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box` too.
pub use std::hint::black_box;

/// Top-level benchmark driver (configuration registry in real criterion).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Applies command-line style configuration; a no-op here.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_one("", &id.into(), sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into(), self.sample_size, f);
        self
    }

    /// Ends the group (explicit in the real API; nothing to flush here).
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; times the workload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if b.samples.is_empty() {
        println!("bench {label}: no samples recorded");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    println!(
        "bench {label}: median {median:?} over {} samples",
        b.samples.len()
    );
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
